// End-to-end integration: client request -> controller verification ->
// platform realization (consolidation / dedicated VM / sandbox) -> real
// packets through the deployed modules.
#include <gtest/gtest.h>

#include "src/controller/orchestrator.h"
#include "src/controller/stock_modules.h"
#include "src/topology/network.h"

namespace innet::controller {
namespace {

using platform::InNetPlatform;

ClientRequest FirewallRequest(const std::string& client_id, uint16_t port,
                              const std::string& client_addr) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port " + std::to_string(port) +
      ") -> IPRewriter(pattern - - " + client_addr + " - 0 0) -> ToNetfront();";
  request.requirements =
      "reach from internet udp -> client dst port " + std::to_string(port);
  request.whitelist = {Ipv4Address::MustParse(client_addr)};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

class OrchestratorTest : public ::testing::Test {
 protected:
  OrchestratorTest() : orchestrator_(topology::Network::MakeFigure3(), &clock_) {}

  sim::EventQueue clock_;
  Orchestrator orchestrator_;
};

TEST_F(OrchestratorTest, StatelessModulesConsolidateIntoOneVm) {
  std::string platform_name;
  for (int i = 0; i < 5; ++i) {
    auto result = orchestrator_.Deploy(
        FirewallRequest("client" + std::to_string(i), static_cast<uint16_t>(1500 + i),
                        "10.10.0." + std::to_string(5 + i)));
    ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
    EXPECT_TRUE(result.consolidated);
    platform_name = result.outcome.platform;
  }
  EXPECT_EQ(orchestrator_.ConsolidatedTenantCount(platform_name), 5u);
  // One shared guest serves all five tenants (plus nothing else).
  EXPECT_EQ(orchestrator_.platform(platform_name)->vms().vm_count(), 1u);
}

TEST_F(OrchestratorTest, StatefulModuleGetsDedicatedVm) {
  // The Figure 4 batcher keeps per-packet queue state (TimedUnqueue):
  // the paper's prototype refuses to consolidate it.
  ClientRequest request = FirewallRequest("mobile", 1500, "10.10.0.5");
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> TimedUnqueue(120,100) -> ToNetfront();";
  auto result = orchestrator_.Deploy(request);
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  EXPECT_FALSE(result.consolidated);
  EXPECT_NE(result.vm_id, 0u);
}

TEST_F(OrchestratorTest, SandboxedModuleGetsDedicatedVm) {
  ClientRequest request;
  request.client_id = "cdn";
  request.requester = RequesterClass::kThirdParty;
  request.click_config = StockX86Vm();
  auto result = orchestrator_.Deploy(request);
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  EXPECT_TRUE(result.outcome.sandboxed);
  EXPECT_FALSE(result.consolidated);
}

TEST_F(OrchestratorTest, RejectedRequestLeavesNoState) {
  ClientRequest request;
  request.client_id = "mallory";
  request.requester = RequesterClass::kThirdParty;
  request.click_config = "FromNetfront() -> TransparentProxy() -> ToNetfront();";
  auto result = orchestrator_.Deploy(request);
  EXPECT_FALSE(result.outcome.accepted);
  EXPECT_TRUE(orchestrator_.controller().deployments().empty());
  for (const char* name : {"platform1", "platform2", "platform3"}) {
    EXPECT_EQ(orchestrator_.platform(name)->vms().vm_count(), 0u) << name;
  }
}

TEST_F(OrchestratorTest, ConsolidatedTenantsProcessTrafficEndToEnd) {
  auto first = orchestrator_.Deploy(FirewallRequest("a", 1500, "10.10.0.5"));
  auto second = orchestrator_.Deploy(FirewallRequest("b", 1600, "10.10.0.6"));
  ASSERT_TRUE(first.outcome.accepted);
  ASSERT_TRUE(second.outcome.accepted);
  ASSERT_EQ(first.outcome.platform, second.outcome.platform);

  InNetPlatform* box = orchestrator_.platform(first.outcome.platform);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));  // shared VM boots

  std::vector<Packet> egressed;
  box->SetEgressHandler([&](Packet& p) { egressed.push_back(p); });

  // Tenant a's flow: allowed + rewritten to 10.10.0.5.
  Packet to_a = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"), first.outcome.module_addr,
                                4000, 1500, 64);
  box->HandlePacket(to_a);
  // Tenant b's flow with tenant a's port: tenant b only allows 1600.
  Packet wrong_port = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                      second.outcome.module_addr, 4000, 1500, 64);
  box->HandlePacket(wrong_port);
  // Tenant b's proper flow.
  Packet to_b = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                second.outcome.module_addr, 4000, 1600, 64);
  box->HandlePacket(to_b);

  ASSERT_EQ(egressed.size(), 2u);
  EXPECT_EQ(egressed[0].ip_dst(), Ipv4Address::MustParse("10.10.0.5"));
  EXPECT_EQ(egressed[1].ip_dst(), Ipv4Address::MustParse("10.10.0.6"));
}

TEST_F(OrchestratorTest, KillRemovesConsolidatedTenantOnly) {
  auto first = orchestrator_.Deploy(FirewallRequest("a", 1500, "10.10.0.5"));
  auto second = orchestrator_.Deploy(FirewallRequest("b", 1600, "10.10.0.6"));
  ASSERT_TRUE(first.outcome.accepted);
  ASSERT_TRUE(second.outcome.accepted);
  const std::string platform_name = first.outcome.platform;
  EXPECT_EQ(orchestrator_.ConsolidatedTenantCount(platform_name), 2u);

  EXPECT_TRUE(orchestrator_.Kill(first.outcome.module_id));
  EXPECT_EQ(orchestrator_.ConsolidatedTenantCount(platform_name), 1u);
  EXPECT_EQ(orchestrator_.controller().deployments().size(), 1u);

  // The survivor still works after the shared-VM rebuild.
  InNetPlatform* box = orchestrator_.platform(platform_name);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
  int egressed = 0;
  box->SetEgressHandler([&](Packet&) { ++egressed; });
  Packet to_b = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                second.outcome.module_addr, 4000, 1600, 64);
  box->HandlePacket(to_b);
  EXPECT_EQ(egressed, 1);

  // Removing the last tenant tears the shared VM down entirely.
  EXPECT_TRUE(orchestrator_.Kill(second.outcome.module_id));
  EXPECT_EQ(box->vms().vm_count(), 0u);
}

TEST_F(OrchestratorTest, KillUnknownModuleFails) {
  EXPECT_FALSE(orchestrator_.Kill("no-such-module"));
}

TEST_F(OrchestratorTest, SandboxedVmEnforcesAtRuntime) {
  // The x86 VM forwards anything; the enforcer wrapped around it must block
  // unauthorized egress — defense in depth doing its job.
  ClientRequest request;
  request.client_id = "cdn";
  request.requester = RequesterClass::kThirdParty;
  request.click_config = StockX86Vm();
  request.whitelist = {Ipv4Address::MustParse("5.5.5.5")};
  auto result = orchestrator_.Deploy(request);
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  ASSERT_TRUE(result.outcome.sandboxed);

  InNetPlatform* box = orchestrator_.platform(result.outcome.platform);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
  std::vector<Packet> egressed;
  box->SetEgressHandler([&](Packet& p) { egressed.push_back(p); });

  // Traffic addressed to the module whose (unchanged) destination is the
  // module itself: not whitelisted, not a response -> blocked.
  Packet stray = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                 result.outcome.module_addr, 4000, 80, 64);
  box->HandlePacket(stray);
  EXPECT_TRUE(egressed.empty());
}

}  // namespace
}  // namespace innet::controller
