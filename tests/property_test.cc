// Property-based and differential tests, parameterized over random seeds
// (TEST_P sweeps). The headline property: the symbolic models are a *sound
// over-approximation* of the runtime Click engine — whenever a concrete
// packet traverses a configuration, some feasible symbolic path admits it.
// This is the property the whole In-Net security story rests on: if the
// checker says "no flow can do X", no runtime packet may do X.
#include <gtest/gtest.h>

#include <sstream>

#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/netcore/flowspec.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"
#include "src/symexec/value_set.h"
#include "src/transport/reno_flow.h"

namespace innet {
namespace {

using symexec::ValueSet;

// --- ValueSet algebra ---------------------------------------------------------------

class ValueSetAlgebra : public ::testing::TestWithParam<uint64_t> {
 protected:
  ValueSet RandomSet(sim::Rng* rng) {
    ValueSet set;
    int pieces = 1 + static_cast<int>(rng->NextBelow(4));
    for (int i = 0; i < pieces; ++i) {
      uint64_t lo = rng->NextBelow(1000);
      uint64_t hi = lo + rng->NextBelow(200);
      set = set.Union(ValueSet::Range(lo, hi));
    }
    return set;
  }
};

TEST_P(ValueSetAlgebra, IntersectIsSubsetOfBoth) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    ValueSet a = RandomSet(&rng);
    ValueSet b = RandomSet(&rng);
    ValueSet both = a.Intersect(b);
    EXPECT_TRUE(both.Subtract(a).IsEmpty());
    EXPECT_TRUE(both.Subtract(b).IsEmpty());
  }
}

TEST_P(ValueSetAlgebra, SubtractPlusIntersectReassembles) {
  sim::Rng rng(GetParam() ^ 0x5555);
  for (int round = 0; round < 50; ++round) {
    ValueSet a = RandomSet(&rng);
    ValueSet b = RandomSet(&rng);
    // (A \ B) ∪ (A ∩ B) == A
    ValueSet reassembled = a.Subtract(b).Union(a.Intersect(b));
    EXPECT_EQ(reassembled, a) << "A=" << a.ToString() << " B=" << b.ToString();
  }
}

TEST_P(ValueSetAlgebra, CountIsAdditiveUnderSplit) {
  sim::Rng rng(GetParam() ^ 0xAAAA);
  for (int round = 0; round < 50; ++round) {
    ValueSet a = RandomSet(&rng);
    ValueSet b = RandomSet(&rng);
    EXPECT_EQ(a.Subtract(b).Count() + a.Intersect(b).Count(), a.Count());
  }
}

TEST_P(ValueSetAlgebra, MembershipConsistency) {
  sim::Rng rng(GetParam() ^ 0x1234);
  for (int round = 0; round < 20; ++round) {
    ValueSet a = RandomSet(&rng);
    ValueSet b = RandomSet(&rng);
    for (int probe = 0; probe < 50; ++probe) {
      uint64_t v = rng.NextBelow(1400);
      EXPECT_EQ(a.Intersect(b).Contains(v), a.Contains(v) && b.Contains(v));
      EXPECT_EQ(a.Union(b).Contains(v), a.Contains(v) || b.Contains(v));
      EXPECT_EQ(a.Subtract(b).Contains(v), a.Contains(v) && !b.Contains(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueSetAlgebra, ::testing::Values(1, 2, 3, 4, 5));

// --- FlowSpec round trips --------------------------------------------------------------

class FlowSpecRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowSpecRoundTrip, ParseToStringParseAgreesOnRandomPackets) {
  sim::Rng rng(GetParam());
  const char* protos[] = {"", "tcp ", "udp ", "icmp "};
  for (int round = 0; round < 40; ++round) {
    std::ostringstream spec_text;
    spec_text << protos[rng.NextBelow(4)];
    if (rng.Bernoulli(0.5)) {
      spec_text << (rng.Bernoulli(0.5) ? "src " : "dst ") << "net 10."
                << rng.NextBelow(256) << ".0.0/16 ";
    }
    if (rng.Bernoulli(0.5)) {
      spec_text << (rng.Bernoulli(0.5) ? "src " : "dst ") << "port "
                << (1 + rng.NextBelow(65535)) << " ";
    }
    auto spec = FlowSpec::Parse(spec_text.str());
    ASSERT_TRUE(spec.has_value()) << spec_text.str();
    auto again = FlowSpec::Parse(spec->ToString());
    ASSERT_TRUE(again.has_value()) << spec->ToString();

    for (int probe = 0; probe < 25; ++probe) {
      Ipv4Address src(static_cast<uint32_t>(rng.Next()));
      Ipv4Address dst(static_cast<uint32_t>(rng.Next()));
      uint16_t sport = static_cast<uint16_t>(rng.NextBelow(65536));
      uint16_t dport = static_cast<uint16_t>(rng.NextBelow(65536));
      Packet p = rng.Bernoulli(0.5) ? Packet::MakeUdp(src, dst, sport, dport)
                                    : Packet::MakeTcp(src, dst, sport, dport, 0);
      EXPECT_EQ(spec->Matches(p), again->Matches(p))
          << spec->ToString() << " vs " << again->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSpecRoundTrip, ::testing::Values(11, 22, 33));

// --- Packet checksum invariant -----------------------------------------------------------

class PacketChecksum : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PacketChecksum, MutatorsPreserveValidChecksumsAfterRefresh) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    Packet p = Packet::MakeUdp(Ipv4Address(static_cast<uint32_t>(rng.Next())),
                               Ipv4Address(static_cast<uint32_t>(rng.Next())),
                               static_cast<uint16_t>(rng.NextBelow(65536)),
                               static_cast<uint16_t>(rng.NextBelow(65536)),
                               rng.NextBelow(1200));
    for (int mutation = 0; mutation < 4; ++mutation) {
      switch (rng.NextBelow(5)) {
        case 0:
          p.set_ip_src(Ipv4Address(static_cast<uint32_t>(rng.Next())));
          break;
        case 1:
          p.set_ip_dst(Ipv4Address(static_cast<uint32_t>(rng.Next())));
          break;
        case 2:
          p.set_src_port(static_cast<uint16_t>(rng.NextBelow(65536)));
          break;
        case 3:
          p.set_dst_port(static_cast<uint16_t>(rng.NextBelow(65536)));
          break;
        case 4:
          p.set_ttl(static_cast<uint8_t>(1 + rng.NextBelow(255)));
          break;
      }
    }
    p.RefreshChecksums();
    EXPECT_TRUE(p.VerifyIpChecksum());
    // And the wire bytes agree with the annotations.
    Packet reparsed = Packet::FromWire(p.data(), p.length());
    ASSERT_GT(reparsed.length(), 0u);
    EXPECT_EQ(reparsed.ip_src(), p.ip_src());
    EXPECT_EQ(reparsed.ip_dst(), p.ip_dst());
    EXPECT_EQ(reparsed.src_port(), p.src_port());
    EXPECT_EQ(reparsed.dst_port(), p.dst_port());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketChecksum, ::testing::Values(7, 8, 9));

// --- Differential: runtime Click engine vs symbolic models --------------------------------

class SymbolicSoundness : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Generates a random linear configuration out of deterministic elements.
  std::string RandomConfig(sim::Rng* rng) {
    std::ostringstream config;
    config << "src :: FromNetfront(); sink :: ToNetfront();\nsrc";
    int stages = 1 + static_cast<int>(rng->NextBelow(4));
    for (int i = 0; i < stages; ++i) {
      switch (rng->NextBelow(5)) {
        case 0:
          config << " -> IPFilter(allow " << (rng->Bernoulli(0.5) ? "udp" : "tcp")
                 << " dst port " << (1 + rng->NextBelow(2000)) << ", allow src net 10."
                 << rng->NextBelow(200) << ".0.0/16)";
          break;
        case 1:
          config << " -> IPRewriter(pattern - - 172.16." << rng->NextBelow(200) << "."
                 << (1 + rng->NextBelow(200)) << " - 0 0)";
          break;
        case 2:
          config << " -> SetIPSrc(192.168." << rng->NextBelow(200) << "."
                 << (1 + rng->NextBelow(200)) << ")";
          break;
        case 3:
          config << " -> Counter()";
          break;
        case 4:
          config << " -> IPFilter(deny src net 10." << rng->NextBelow(200)
                 << ".0.0/16, allow all)";
          break;
      }
    }
    config << " -> sink;";
    return config.str();
  }

  Packet RandomPacket(sim::Rng* rng) {
    Ipv4Address src(Ipv4Address::MustParse("10.0.0.0").value() +
                    static_cast<uint32_t>(rng->NextBelow(1u << 24)));
    Ipv4Address dst(Ipv4Address::MustParse("172.16.0.0").value() +
                    static_cast<uint32_t>(rng->NextBelow(1u << 16)));
    uint16_t sport = static_cast<uint16_t>(1 + rng->NextBelow(65000));
    uint16_t dport = static_cast<uint16_t>(1 + rng->NextBelow(2500));
    return rng->Bernoulli(0.5) ? Packet::MakeUdp(src, dst, sport, dport, 16)
                               : Packet::MakeTcp(src, dst, sport, dport, 0, 16);
  }
};

TEST_P(SymbolicSoundness, RuntimeDeliveryImpliesFeasibleSymbolicPath) {
  sim::Rng rng(GetParam());
  int delivered_cases = 0;
  for (int round = 0; round < 60; ++round) {
    std::string config_text = RandomConfig(&rng);
    std::string error;
    auto config = click::ConfigGraph::Parse(config_text, &error);
    ASSERT_TRUE(config.has_value()) << config_text << "\n" << error;
    auto graph = click::Graph::Build(*config, &error);
    ASSERT_NE(graph, nullptr) << config_text << "\n" << error;
    auto model = symexec::BuildClickModel(*config, &error);
    ASSERT_TRUE(model.has_value()) << config_text << "\n" << error;

    symexec::Engine engine;
    symexec::EngineResult symbolic =
        engine.Run(*model, model->FindNode("src"), symexec::kPortInject,
                   symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));

    for (int probe = 0; probe < 10; ++probe) {
      Packet input = RandomPacket(&rng);
      Packet output;
      bool runtime_delivered = false;
      graph->FindAs<click::ToNetfront>("sink")->set_handler([&](Packet& p) {
        output = p;
        runtime_delivered = true;
      });
      Packet in_copy = input;
      graph->Inject("src", in_copy);
      if (!runtime_delivered) {
        continue;
      }
      ++delivered_cases;

      // Soundness: some feasible symbolic path must admit the observed
      // output (every field value within the path's final possible values).
      bool admitted = false;
      for (const symexec::SymbolicPacket& path : symbolic.delivered) {
        bool fits =
            path.PossibleValues(HeaderField::kIpSrc).Contains(output.ip_src().value()) &&
            path.PossibleValues(HeaderField::kIpDst).Contains(output.ip_dst().value()) &&
            path.PossibleValues(HeaderField::kProto).Contains(output.protocol()) &&
            path.PossibleValues(HeaderField::kSrcPort).Contains(output.src_port()) &&
            path.PossibleValues(HeaderField::kDstPort).Contains(output.dst_port());
        if (fits) {
          admitted = true;
          break;
        }
      }
      EXPECT_TRUE(admitted) << "runtime delivered a packet no symbolic path admits\n"
                            << "config: " << config_text << "\n"
                            << "input:  " << input.Describe() << "\n"
                            << "output: " << output.Describe();
    }
  }
  // The generator must actually exercise deliveries, or the property is vacuous.
  EXPECT_GT(delivered_cases, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicSoundness, ::testing::Values(101, 202, 303, 404));

// --- Transport: reliable delivery under arbitrary loss ------------------------------------

struct LossCase {
  double loss;
  uint64_t seed;
};

class RenoReliability : public ::testing::TestWithParam<LossCase> {};

TEST_P(RenoReliability, EverySegmentDeliveredInOrderExactlyOnce) {
  const LossCase& param = GetParam();
  sim::EventQueue clock;
  sim::Rng rng(param.seed);
  sim::Link::Config link;
  link.rate_bps = 20e6;
  link.propagation = sim::FromMillis(5);
  link.loss_prob = param.loss;
  link.queue_limit_bytes = 64 * 1500;
  transport::RawLossyChannel channel(&clock, &rng, link);
  transport::RenoConfig config;
  config.min_rto_sec = 0.2;
  transport::RenoFlow flow(&clock, &channel, config, sim::FromMillis(5));

  uint64_t last_in_order = 0;
  bool monotonic = true;
  flow.SetInOrderCallback([&](uint64_t in_order) {
    if (in_order < last_in_order) {
      monotonic = false;
    }
    last_in_order = in_order;
  });
  flow.EnqueueSegments(500);
  clock.RunUntil(sim::FromSeconds(120));
  EXPECT_EQ(flow.receiver_in_order(), 500u) << "loss=" << param.loss;
  EXPECT_EQ(flow.cumulative_acked(), 500u);
  EXPECT_TRUE(monotonic);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, RenoReliability,
                         ::testing::Values(LossCase{0.0, 1}, LossCase{0.01, 2},
                                           LossCase{0.05, 3}, LossCase{0.10, 4},
                                           LossCase{0.20, 5}, LossCase{0.05, 6},
                                           LossCase{0.10, 7}));

}  // namespace
}  // namespace innet
