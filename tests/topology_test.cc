#include <gtest/gtest.h>

#include "src/symexec/engine.h"
#include "src/topology/network.h"

namespace innet::topology {
namespace {

using symexec::Engine;
using symexec::kPortInject;
using symexec::SymbolicPacket;

// --- Graph construction ---------------------------------------------------------

TEST(Network, AddNodeRejectsDuplicates) {
  Network net;
  Node a;
  a.name = "a";
  EXPECT_TRUE(net.AddNode(a));
  EXPECT_FALSE(net.AddNode(a));
}

TEST(Network, LinksAssignPortsInOrder) {
  Network net;
  for (const char* name : {"a", "b", "c"}) {
    Node node;
    node.name = name;
    net.AddNode(node);
  }
  EXPECT_TRUE(net.AddLink("a", "b"));
  EXPECT_TRUE(net.AddLink("a", "c"));
  EXPECT_FALSE(net.AddLink("a", "missing"));
  EXPECT_EQ(net.PortOf("a", "b"), 0);
  EXPECT_EQ(net.PortOf("a", "c"), 1);
  EXPECT_EQ(net.PortOf("b", "a"), 0);
  EXPECT_EQ(net.PortOf("a", "nope"), -1);
}

TEST(Network, OwnerOfFindsSubnetAndPool) {
  Network net = Network::MakeFigure3();
  const Node* clients = net.OwnerOf(Ipv4Address::MustParse("10.10.3.4"));
  ASSERT_NE(clients, nullptr);
  EXPECT_EQ(clients->name, "clients");
  const Node* platform = net.OwnerOf(Ipv4Address::MustParse("172.16.3.99"));
  ASSERT_NE(platform, nullptr);
  EXPECT_EQ(platform->name, "platform3");
  EXPECT_EQ(net.OwnerOf(Ipv4Address::MustParse("8.8.8.8")), nullptr);
}

TEST(Network, Figure3Inventory) {
  Network net = Network::MakeFigure3();
  EXPECT_EQ(net.Platforms().size(), 3u);
  EXPECT_EQ(net.ClientSubnets().size(), 1u);
  EXPECT_NE(net.Find("nat_firewall"), nullptr);
  EXPECT_NE(net.Find("http_optimizer"), nullptr);
  EXPECT_NE(net.Find("web_cache"), nullptr);
  EXPECT_EQ(net.Find("no_such"), nullptr);
}

TEST(Network, MultiPopInventory) {
  Network net = Network::MakeMultiPop(5);
  EXPECT_EQ(net.Platforms().size(), 5u);
  EXPECT_EQ(net.ClientSubnets().size(), 5u);
  // Pools and subnets are disjoint across PoPs.
  for (int pop = 0; pop < 5; ++pop) {
    const Node* owner = net.OwnerOf(Ipv4Address(10, static_cast<uint8_t>(pop + 1), 1, 1));
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->name, "clients" + std::to_string(pop));
  }
}

TEST(Network, HopDistanceSymmetric) {
  Network net = Network::MakeMultiPop(3);
  for (const char* a : {"internet", "core", "access1", "platform2"}) {
    for (const char* b : {"clients0", "platform1", "core"}) {
      EXPECT_EQ(net.HopDistance(a, b), net.HopDistance(b, a)) << a << " " << b;
    }
  }
}

// --- Symbolic node models ----------------------------------------------------------

// Helper: run an injection and collect names of delivery nodes.
std::vector<std::string> DeliveredAt(const Network& net, const std::string& from,
                                     const std::string& flow) {
  symexec::SymGraph graph = net.BuildSymGraph();
  Engine engine;
  SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
  std::vector<std::string> names;
  for (SymbolicPacket& branch : seed.ConstrainToFlowSpec(FlowSpec::MustParse(flow),
                                                         engine.vars())) {
    auto result = engine.Run(graph, graph.FindNode(from), kPortInject, std::move(branch));
    for (const SymbolicPacket& p : result.delivered) {
      names.push_back(p.delivered_at());
    }
  }
  return names;
}

TEST(NetworkModels, MultiPopClientsReachTheInternet) {
  Network net = Network::MakeMultiPop(2);
  auto delivered = DeliveredAt(net, "clients0", "udp");
  EXPECT_NE(std::find(delivered.begin(), delivered.end(), "internet"), delivered.end());
}

TEST(NetworkModels, MultiPopClientsReachOtherPops) {
  Network net = Network::MakeMultiPop(2);
  auto delivered = DeliveredAt(net, "clients0", "udp dst net 10.2.0.0/16");
  EXPECT_NE(std::find(delivered.begin(), delivered.end(), "clients1"), delivered.end());
}

TEST(NetworkModels, RouterNeverBouncesOutIngressPort) {
  // Traffic from the Internet to an unknown destination dies at the core
  // instead of reflecting back out (the default route equals the ingress).
  Network net = Network::MakeMultiPop(2);
  auto delivered = DeliveredAt(net, "internet", "udp dst net 99.0.0.0/8");
  EXPECT_TRUE(delivered.empty());
}

TEST(NetworkModels, ClientSubnetOnlyDeliversItsPrefix) {
  Network net = Network::MakeMultiPop(2);
  // dst in pop 1's subnet injected from the Internet: only clients1 delivers.
  auto delivered = DeliveredAt(net, "internet", "udp dst net 10.2.0.0/16");
  for (const std::string& name : delivered) {
    EXPECT_EQ(name, "clients1");
  }
  EXPECT_FALSE(delivered.empty());
}

TEST(NetworkModels, ScalingTopologySizeMatchesRequest) {
  for (int n : {1, 8, 64}) {
    Network net = Network::MakeScalingTopology(n);
    int middleboxes = 0;
    for (const Node& node : net.nodes()) {
      middleboxes += node.kind == NodeKind::kMiddlebox ? 1 : 0;
    }
    EXPECT_EQ(middleboxes, n);
    // The chain stays connected end to end.
    EXPECT_EQ(net.HopDistance("internet", "clients"), n + 2);
  }
}

TEST(NetworkModels, AttachmentsAffectPlatformModel) {
  Network net = Network::MakeMultiPop(1);
  Network::ModuleAttachment att;
  att.platform = "platform0";
  att.addr = Ipv4Address::MustParse("172.16.10.10");
  att.entry_node = "m/in";
  att.exit_node = "m/out";
  net.AttachModule(att);
  symexec::SymGraph graph = net.BuildSymGraph();

  // Traffic to the module address enters the platform's module port (wired
  // by the controller; here unconnected, so the packet parks as dropped
  // rather than delivered elsewhere).
  Engine engine;
  SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
  std::vector<SymbolicPacket> branches = seed.ConstrainToFlowSpec(
      FlowSpec::MustParse("udp dst host 172.16.10.10"), engine.vars());
  auto result =
      engine.Run(graph, graph.FindNode("internet"), kPortInject, std::move(branches[0]));
  EXPECT_TRUE(result.delivered.empty());
  bool reached_platform = false;
  for (const SymbolicPacket& p : result.dropped) {
    if (p.FindHop("platform0") >= 0) {
      reached_platform = true;
    }
  }
  EXPECT_TRUE(reached_platform);
}

}  // namespace
}  // namespace innet::topology
