#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/platform/consolidation.h"
#include "src/platform/platform.h"
#include "src/platform/sandbox.h"
#include "src/platform/vm.h"

namespace innet::platform {
namespace {

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         32);
}

const char* kForwarderConfig =
    "FromNetfront() -> IPFilter(allow all) -> ToNetfront();";

// --- Cost model ------------------------------------------------------------------

TEST(VmCostModel, ClickOsBootsOrdersOfMagnitudeFasterThanLinux) {
  VmCostModel model;
  EXPECT_LT(model.BootTime(VmKind::kClickOs, 0), sim::FromMillis(50));
  EXPECT_GE(model.BootTime(VmKind::kLinux, 0), sim::FromMillis(500));
}

TEST(VmCostModel, BootDegradesWithRunningVms) {
  VmCostModel model;
  EXPECT_GT(model.BootTime(VmKind::kClickOs, 100), model.BootTime(VmKind::kClickOs, 0));
  // Roughly 100 ms around 100 running VMs (Figure 5's right edge).
  double ms_at_100 = sim::ToMillis(model.BootTime(VmKind::kClickOs, 100));
  EXPECT_GT(ms_at_100, 60);
  EXPECT_LT(ms_at_100, 140);
}

TEST(VmCostModel, MemoryCapacityMatchesPaper) {
  // §6: 128 GB box -> 10,000 ClickOS guests vs ~200 stripped-down Linux VMs.
  VmCostModel model;
  uint64_t box = 128ull << 30;
  EXPECT_GE(box / model.MemoryBytes(VmKind::kClickOs), 10000u);
  EXPECT_LE(box / model.MemoryBytes(VmKind::kLinux), 256u);
}

// --- VmManager --------------------------------------------------------------------

TEST(VmManager, BootCompletesAfterBootTime) {
  sim::EventQueue clock;
  VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  bool ready = false;
  Vm* vm = vms.Create(VmKind::kClickOs, kForwarderConfig, [&](Vm*) { ready = true; }, &error);
  ASSERT_NE(vm, nullptr) << error;
  EXPECT_EQ(vm->state(), VmState::kBooting);
  clock.RunUntil(sim::FromMillis(10));
  EXPECT_FALSE(ready);
  clock.RunUntil(sim::FromMillis(40));
  EXPECT_TRUE(ready);
  EXPECT_EQ(vm->state(), VmState::kRunning);
}

TEST(VmManager, RejectsInvalidConfig) {
  sim::EventQueue clock;
  VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  EXPECT_EQ(vms.Create(VmKind::kClickOs, "Bogus();", nullptr, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(VmManager, MemoryExhaustion) {
  sim::EventQueue clock;
  VmCostModel model;
  VmManager vms(&clock, model, 3 * model.MemoryBytes(VmKind::kClickOs));
  std::string error;
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(vms.Create(VmKind::kClickOs, kForwarderConfig, nullptr, &error), nullptr);
  }
  EXPECT_EQ(vms.Create(VmKind::kClickOs, kForwarderConfig, nullptr, &error), nullptr);
  EXPECT_NE(error.find("memory"), std::string::npos);
  EXPECT_EQ(vms.RemainingCapacity(VmKind::kClickOs), 0u);
}

TEST(VmManager, DestroyReleasesMemory) {
  sim::EventQueue clock;
  VmCostModel model;
  VmManager vms(&clock, model, 1 * model.MemoryBytes(VmKind::kClickOs));
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, kForwarderConfig, nullptr, &error);
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vms.Destroy(vm->id()));
  EXPECT_EQ(vms.memory_used(), 0u);
  EXPECT_NE(vms.Create(VmKind::kClickOs, kForwarderConfig, nullptr, &error), nullptr);
}

TEST(VmManager, SuspendResumeCycle) {
  sim::EventQueue clock;
  VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, kForwarderConfig, nullptr, &error);
  ASSERT_NE(vm, nullptr);
  clock.RunUntil(sim::FromMillis(100));
  ASSERT_EQ(vm->state(), VmState::kRunning);

  bool suspended = false;
  EXPECT_TRUE(vms.Suspend(vm->id(), [&] { suspended = true; }));
  EXPECT_EQ(vm->state(), VmState::kSuspending);
  EXPECT_FALSE(vms.Suspend(vm->id()));  // already suspending
  clock.RunUntil(sim::FromMillis(200));
  EXPECT_TRUE(suspended);
  EXPECT_EQ(vm->state(), VmState::kSuspended);

  bool resumed = false;
  EXPECT_TRUE(vms.Resume(vm->id(), [&] { resumed = true; }));
  clock.RunUntil(sim::FromMillis(350));
  EXPECT_TRUE(resumed);
  EXPECT_EQ(vm->state(), VmState::kRunning);
}

TEST(VmManager, SuspendedVmDropsTraffic) {
  sim::EventQueue clock;
  VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, kForwarderConfig, nullptr, &error);
  ASSERT_NE(vm, nullptr);
  clock.RunUntil(sim::FromMillis(100));
  vms.Suspend(vm->id());
  clock.RunUntil(sim::FromMillis(200));
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  vm->Inject(p);
  EXPECT_EQ(vm->injected_count(), 0u);
}

// --- Platform: on-the-fly instantiation --------------------------------------------

TEST(Platform, StaticInstallRoutesTraffic) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  Vm::VmId id = platform.Install(Ipv4Address::MustParse("172.16.3.10"), kForwarderConfig,
                                 &error);
  ASSERT_NE(id, 0u) << error;
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  clock.RunUntil(sim::FromMillis(100));  // let the VM boot
  Packet p = Udp("9.9.9.9", "172.16.3.10", 1, 2);
  platform.HandlePacket(p);
  EXPECT_EQ(egressed, 1);
  EXPECT_EQ(platform.software_switch().delivered_count(), 1u);
}

TEST(Platform, OnDemandBootsPerFlowAndBuffers) {
  sim::EventQueue clock;
  // Registry counters are process-wide aggregates: assert on deltas.
  uint64_t boots_before =
      obs::Registry().GetCounter("innet_platform_ondemand_boots_total")->value();
  uint64_t misses_before =
      obs::Registry().GetCounter("innet_platform_flow_misses_total")->value();
  uint64_t buffered_before =
      obs::Registry().GetCounter("innet_platform_buffered_packets_total")->value();
  InNetPlatform platform(&clock);
  platform.RegisterOnDemand(Ipv4Address::MustParse("172.16.3.10"), kForwarderConfig,
                            VmKind::kClickOs, /*per_flow=*/true);
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });

  // Three packets of one flow arrive before the VM is up: all buffered.
  for (int i = 0; i < 3; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", 5000, 80);
    platform.HandlePacket(p);
  }
  EXPECT_EQ(platform.ondemand_boots(), 1u);
  EXPECT_EQ(platform.buffered_count(), 3u);
  EXPECT_EQ(egressed, 0);
  EXPECT_EQ(obs::Registry().GetCounter("innet_platform_ondemand_boots_total")->value(),
            boots_before + 1u);
  EXPECT_EQ(obs::Registry().GetCounter("innet_platform_flow_misses_total")->value(),
            misses_before + 3u);  // all three pre-boot packets missed
  EXPECT_EQ(obs::Registry().GetCounter("innet_platform_buffered_packets_total")->value(),
            buffered_before + 3u);

  clock.RunUntil(sim::FromMillis(100));
  EXPECT_EQ(egressed, 3);  // flushed on boot

  // Subsequent packets of the same flow flow through directly.
  Packet p = Udp("9.9.9.9", "172.16.3.10", 5000, 80);
  platform.HandlePacket(p);
  EXPECT_EQ(egressed, 4);
  EXPECT_EQ(platform.ondemand_boots(), 1u);
}

TEST(Platform, OnDemandDistinctFlowsGetDistinctVms) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  platform.RegisterOnDemand(Ipv4Address::MustParse("172.16.3.10"), kForwarderConfig);
  for (uint16_t flow = 0; flow < 5; ++flow) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(6000 + flow), 80);
    platform.HandlePacket(p);
  }
  EXPECT_EQ(platform.ondemand_boots(), 5u);
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_EQ(platform.vms().vm_count(), 5u);
  EXPECT_EQ(platform.software_switch().flow_rule_count(), 5u);
}

TEST(Platform, SharedOnDemandVm) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  platform.RegisterOnDemand(Ipv4Address::MustParse("172.16.3.10"), kForwarderConfig,
                            VmKind::kClickOs, /*per_flow=*/false);
  for (uint16_t flow = 0; flow < 5; ++flow) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(6000 + flow), 80);
    platform.HandlePacket(p);
  }
  EXPECT_EQ(platform.ondemand_boots(), 1u);
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_EQ(platform.vms().vm_count(), 1u);
}

TEST(Platform, UnknownTrafficDropped) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  Packet p = Udp("9.9.9.9", "172.16.3.99", 1, 2);
  platform.HandlePacket(p);
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_EQ(platform.vms().vm_count(), 0u);
}

TEST(Platform, UninstallStopsDelivery) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  Ipv4Address addr = Ipv4Address::MustParse("172.16.3.10");
  ASSERT_NE(platform.Install(addr, kForwarderConfig, &error), 0u);
  clock.RunUntil(sim::FromMillis(100));
  ASSERT_TRUE(platform.Uninstall(addr));
  EXPECT_FALSE(platform.Uninstall(addr));
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  Packet p = Udp("9.9.9.9", "172.16.3.10", 1, 2);
  platform.HandlePacket(p);
  EXPECT_EQ(egressed, 0);
}

// --- Consolidation -------------------------------------------------------------------

TEST(Consolidation, MergedConfigDemultiplexesByAddress) {
  std::vector<TenantConfig> tenants;
  for (int i = 0; i < 3; ++i) {
    TenantConfig t;
    t.addr = Ipv4Address(Ipv4Address::MustParse("172.16.3.10").value() +
                         static_cast<uint32_t>(i));
    t.config_text = "FromNetfront() -> Counter() -> ToNetfront();";
    tenants.push_back(t);
  }
  std::string error;
  auto merged = ConsolidateTenants(tenants, &error);
  ASSERT_TRUE(merged.has_value()) << error;

  auto graph = click::Graph::Build(*merged, &error);
  ASSERT_NE(graph, nullptr) << error;
  auto* out = graph->FindAs<click::ToNetfront>("out");
  ASSERT_NE(out, nullptr);

  Packet to_t1 = Udp("9.9.9.9", "172.16.3.11", 1, 2);
  Packet to_nobody = Udp("9.9.9.9", "172.16.3.99", 1, 2);
  graph->Inject("src", to_t1);
  graph->Inject("src", to_nobody);
  EXPECT_EQ(out->packet_count(), 1u);
  // Tenant 1's counter saw the packet; tenant 0's did not.
  EXPECT_EQ(graph->FindAs<click::Counter>("t1_Counter@1")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<click::Counter>("t0_Counter@1")->packet_count(), 0u);
}

TEST(Consolidation, RefusesStatefulTenants) {
  std::vector<TenantConfig> tenants(1);
  tenants[0].addr = Ipv4Address::MustParse("172.16.3.10");
  tenants[0].config_text = "FromNetfront() -> NatRewriter(PUBLIC 1.2.3.4) -> ToNetfront();";
  std::string error;
  EXPECT_FALSE(ConsolidateTenants(tenants, &error).has_value());
  EXPECT_NE(error.find("stateful"), std::string::npos);
}

TEST(Consolidation, RefusesConfigWithoutEndpoints) {
  std::vector<TenantConfig> tenants(1);
  tenants[0].addr = Ipv4Address::MustParse("172.16.3.10");
  tenants[0].config_text = "a :: Counter(); a -> Discard();";
  std::string error;
  EXPECT_FALSE(ConsolidateTenants(tenants, &error).has_value());
}

TEST(Consolidation, IsStatelessConfigClassification) {
  std::string error;
  auto stateless = click::ConfigGraph::Parse(
      "FromNetfront() -> IPFilter(allow all) -> ToNetfront();", &error);
  auto stateful = click::ConfigGraph::Parse(
      "FromNetfront() -> TimedUnqueue(1,1) -> ToNetfront();", &error);
  ASSERT_TRUE(stateless && stateful);
  EXPECT_TRUE(IsStatelessConfig(*stateless));
  EXPECT_FALSE(IsStatelessConfig(*stateful));
}

TEST(Consolidation, HashDemuxBehavesLikeLinear) {
  // Both demux kinds must route identically; only per-packet cost differs.
  std::vector<TenantConfig> tenants;
  for (int i = 0; i < 8; ++i) {
    TenantConfig t;
    t.addr = Ipv4Address(Ipv4Address::MustParse("172.16.3.10").value() +
                         static_cast<uint32_t>(i));
    t.config_text = "FromNetfront() -> Counter() -> ToNetfront();";
    tenants.push_back(t);
  }
  std::string error;
  for (DemuxKind kind : {DemuxKind::kLinearClassifier, DemuxKind::kHashDemux}) {
    auto merged = ConsolidateTenants(tenants, &error, kind);
    ASSERT_TRUE(merged.has_value()) << error;
    auto graph = click::Graph::Build(*merged, &error);
    ASSERT_NE(graph, nullptr) << error;
    Packet hit = Udp("9.9.9.9", "172.16.3.14", 1, 2);
    Packet miss = Udp("9.9.9.9", "172.16.3.99", 1, 2);
    graph->Inject("src", hit);
    graph->Inject("src", miss);
    EXPECT_EQ(dynamic_cast<click::ToNetfront*>(graph->Find("out"))->packet_count(), 1u);
    EXPECT_EQ(graph->FindAs<click::Counter>("t4_Counter@1")->packet_count(), 1u);
  }
}

TEST(Consolidation, ScalesToManyTenants) {
  std::vector<TenantConfig> tenants;
  for (int i = 0; i < 200; ++i) {
    TenantConfig t;
    t.addr = Ipv4Address(Ipv4Address::MustParse("172.16.0.0").value() +
                         static_cast<uint32_t>(i + 10));
    t.config_text = "FromNetfront() -> IPFilter(allow udp, allow tcp) -> ToNetfront();";
    tenants.push_back(t);
  }
  std::string error;
  auto merged = ConsolidateTenants(tenants, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  auto graph = click::Graph::Build(*merged, &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("9.9.9.9", "172.16.0.110", 1, 2);  // tenant 100
  graph->Inject("src", p);
  EXPECT_EQ(dynamic_cast<click::ToNetfront*>(graph->Find("out"))->packet_count(), 1u);
}

// --- Sandboxing ----------------------------------------------------------------------

TEST(Sandbox, WrapWithEnforcerFiltersEgress) {
  std::string error;
  auto config = click::ConfigGraph::Parse(
      "src :: FromNetfront(); sink :: ToNetfront(); src -> Counter() -> sink;", &error);
  ASSERT_TRUE(config.has_value());
  auto wrapped = WrapWithEnforcer(*config, {Ipv4Address::MustParse("7.7.7.7")}, 60, &error);
  ASSERT_TRUE(wrapped.has_value()) << error;

  auto graph = click::Graph::Build(*wrapped, &error);
  ASSERT_NE(graph, nullptr) << error;
  auto* sink = graph->FindAs<click::ToNetfront>("sink");

  Packet allowed = Udp("9.9.9.9", "7.7.7.7", 1, 2);
  Packet blocked = Udp("9.9.9.9", "8.8.8.8", 1, 2);
  graph->Inject("src", allowed);
  graph->Inject("src", blocked);
  // Ingress passes the enforcer's inbound side, so both packets reach the
  // counter; only the whitelisted egress survives the outbound side...
  // ...but in this linear config ingress IS egress, so the enforcer sees the
  // whitelisted one only.
  EXPECT_EQ(sink->packet_count(), 1u);
}

TEST(Sandbox, WrapRequiresEndpoints) {
  std::string error;
  auto config = click::ConfigGraph::Parse("a :: Counter(); a -> Discard();", &error);
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(WrapWithEnforcer(*config, {}, 60, &error).has_value());
}

TEST(Sandbox, InstallWithSandboxEnforcesWhitelist) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  Vm::VmId id = platform.Install(Ipv4Address::MustParse("172.16.3.10"), kForwarderConfig,
                                 &error, VmKind::kClickOs, /*sandbox=*/true,
                                 {Ipv4Address::MustParse("7.7.7.7")});
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromMillis(100));
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  Packet allowed = Udp("9.9.9.9", "172.16.3.10", 1, 2);
  platform.HandlePacket(allowed);
  // Note: the enforcer's outbound side sees dst 172.16.3.10 (the module
  // address is not whitelisted here and the packet is not a response), so it
  // is blocked — the sandbox fails closed.
  EXPECT_EQ(egressed, 0);
}

TEST(Sandbox, SeparateVmRoundTrip) {
  SeparateVmSandbox sandbox({Ipv4Address::MustParse("7.7.7.7")});
  Packet inbound = Udp("8.8.8.8", "172.16.3.10", 1, 2);
  EXPECT_TRUE(sandbox.Filter(0, inbound));  // inbound always admitted (recorded)
  Packet reply = Udp("172.16.3.10", "8.8.8.8", 2, 1);
  EXPECT_TRUE(sandbox.Filter(1, reply));  // implicit authorization
  Packet stray = Udp("172.16.3.10", "6.6.6.6", 2, 1);
  EXPECT_FALSE(sandbox.Filter(1, stray));
  Packet whitelisted = Udp("172.16.3.10", "7.7.7.7", 2, 1);
  EXPECT_TRUE(sandbox.Filter(1, whitelisted));
  EXPECT_EQ(sandbox.processed_count(), 4u);
}

}  // namespace
}  // namespace innet::platform
