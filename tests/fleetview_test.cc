// FleetView: per-region delta tracking from cumulative digest samples,
// ingestion idempotence under duplicated/reordered digests, EWMA anomaly
// flags, regional-vs-fleet incident correlation, and the deterministic dump.
#include "src/obs/fleetview.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::obs {
namespace {

constexpr uint64_t kSecond = 1'000'000'000ull;

// Each test gets its own registry + tracer so counters and events don't
// bleed across tests through the process-wide singletons.
class FleetViewTest : public ::testing::Test {
 protected:
  FleetViewTest() : view_(&registry_, &tracer_) { tracer_.Enable(); }

  std::map<std::string, uint64_t> Sample(uint64_t value) {
    return {{"control_retries", value}};
  }

  uint64_t IncidentCounter(const std::string& scope) {
    return static_cast<uint64_t>(
        registry_.GetCounter("innet_fleet_incidents_total", {{"scope", scope}})->value());
  }

  MetricsRegistry registry_;
  EventTracer tracer_;
  FleetView view_;
};

TEST_F(FleetViewTest, TracksDeltasFromCumulativeSamples) {
  view_.Ingest("east", 1, 1 * kSecond, false, Sample(10));
  view_.Ingest("east", 2, 2 * kSecond, false, Sample(14));
  view_.Ingest("east", 3, 3 * kSecond, false, Sample(14));
  EXPECT_EQ(view_.FleetTotal("control_retries"), 14u);
  EXPECT_EQ(view_.region_count(), 1u);
  EXPECT_EQ(view_.ingests(), 3u);

  json::Value dump = view_.ToJson(3 * kSecond);
  const json::Value* fleet = dump.Find("fleet");
  ASSERT_NE(fleet, nullptr);
  const json::Value* series = fleet->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  const json::Value* regions = series->at(0).Find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_EQ(regions->size(), 1u);
  EXPECT_EQ(regions->at(0).Find("last")->int_number(), 14);
  EXPECT_EQ(regions->at(0).Find("last_delta")->int_number(), 0);
  EXPECT_EQ(regions->at(0).Find("delta_points")->int_number(), 3);
}

TEST_F(FleetViewTest, DuplicateAndReorderedSeqsNeverDoubleCount) {
  view_.Ingest("east", 1, 1 * kSecond, false, Sample(10));
  view_.Ingest("east", 2, 2 * kSecond, false, Sample(20));
  // A WAN duplicate of seq 2 and a reordered seq 1 must both be ignored:
  // same ingest count, same deltas, no phantom points.
  view_.Ingest("east", 2, 3 * kSecond, false, Sample(20));
  view_.Ingest("east", 1, 3 * kSecond, false, Sample(10));
  EXPECT_EQ(view_.ingests(), 2u);
  EXPECT_EQ(view_.FleetTotal("control_retries"), 20u);

  json::Value dump = view_.ToJson(3 * kSecond);
  const json::Value* regions =
      dump.Find("fleet")->Find("series")->at(0).Find("regions");
  EXPECT_EQ(regions->at(0).Find("delta_points")->int_number(), 2);
}

TEST_F(FleetViewTest, CounterResetRestartsDeltaFromNewValue) {
  view_.Ingest("east", 1, 1 * kSecond, false, Sample(100));
  view_.Ingest("east", 2, 2 * kSecond, false, Sample(104));
  // The region's orchestrator restarted: the cumulative counter shrank. The
  // delta restarts from the new value instead of going negative/huge.
  view_.Ingest("east", 3, 3 * kSecond, false, Sample(3));
  json::Value dump = view_.ToJson(3 * kSecond);
  const json::Value* row = &dump.Find("fleet")->Find("series")->at(0).Find("regions")->at(0);
  EXPECT_EQ(row->Find("last")->int_number(), 3);
  EXPECT_EQ(row->Find("last_delta")->int_number(), 3);
}

TEST_F(FleetViewTest, SustainedBurstFlagsRegionalIncident) {
  uint64_t cumulative = 0;
  uint64_t seq = 0;
  // Warmup with quiet deltas of 1, then a sustained burst of 100/digest.
  for (int i = 0; i < 6; ++i) {
    cumulative += 1;
    view_.Ingest("east", ++seq, seq * kSecond, false, Sample(cumulative));
  }
  EXPECT_TRUE(view_.incidents().empty());
  cumulative += 100;
  view_.Ingest("east", ++seq, seq * kSecond, false, Sample(cumulative));
  EXPECT_TRUE(view_.incidents().empty()) << "one deviant window must not flag yet";
  cumulative += 100;
  view_.Ingest("east", ++seq, seq * kSecond, false, Sample(cumulative));

  ASSERT_EQ(view_.incidents().size(), 1u);
  const FleetView::Incident& incident = view_.incidents()[0];
  EXPECT_EQ(incident.scope, "regional");
  EXPECT_EQ(incident.metric, "control_retries");
  ASSERT_EQ(incident.regions.size(), 1u);
  EXPECT_EQ(incident.regions[0], "east");
  EXPECT_EQ(IncidentCounter("regional"), 1u);
  EXPECT_EQ(IncidentCounter("fleet"), 0u);

  // The flag is one-per-episode: further deviant windows don't re-raise.
  cumulative += 100;
  view_.Ingest("east", ++seq, seq * kSecond, false, Sample(cumulative));
  EXPECT_EQ(view_.incidents().size(), 1u);

  // The episode's trace event went to our tracer with the wire kind.
  bool traced = false;
  for (const TraceEvent& event : tracer_.events()) {
    traced |= event.kind == EventKind::kFleetIncident;
  }
  EXPECT_TRUE(traced);
}

TEST_F(FleetViewTest, CorrelatedBurstsPromoteToFleetIncident) {
  uint64_t east = 0;
  uint64_t west = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 6; ++i) {
    east += 1;
    west += 1;
    ++seq;
    view_.Ingest("east", seq, seq * kSecond, false, Sample(east));
    view_.Ingest("west", seq, seq * kSecond, false, Sample(west));
  }
  // Both regions burst inside the correlation window (same digest rounds).
  for (int i = 0; i < 2; ++i) {
    east += 100;
    west += 100;
    ++seq;
    view_.Ingest("east", seq, seq * kSecond, false, Sample(east));
    view_.Ingest("west", seq, seq * kSecond, false, Sample(west));
  }
  ASSERT_GE(view_.incidents().size(), 2u);
  // East flags first (no peer flagged yet -> regional); west's flag sees
  // east's inside the window and promotes to fleet scope.
  EXPECT_EQ(view_.incidents()[0].scope, "regional");
  const FleetView::Incident& fleet_incident = view_.incidents()[1];
  EXPECT_EQ(fleet_incident.scope, "fleet");
  ASSERT_EQ(fleet_incident.regions.size(), 2u);
  EXPECT_EQ(fleet_incident.regions[0], "east");
  EXPECT_EQ(fleet_incident.regions[1], "west");
  EXPECT_EQ(IncidentCounter("fleet"), 1u);
}

TEST_F(FleetViewTest, AnomalousRegionsExpireWithTheWindow) {
  uint64_t cumulative = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 6; ++i) {
    cumulative += 1;
    view_.Ingest("east", ++seq, seq * kSecond, false, Sample(cumulative));
  }
  for (int i = 0; i < 2; ++i) {
    cumulative += 100;
    view_.Ingest("east", ++seq, seq * kSecond, false, Sample(cumulative));
  }
  uint64_t flagged_at = seq * kSecond;
  ASSERT_EQ(view_.AnomalousRegions(flagged_at).size(), 1u);
  EXPECT_EQ(view_.AnomalousRegions(flagged_at)[0], "east");

  // Quiet windows end the episode; once the correlation window has passed,
  // the region stops ranking as anomalous.
  cumulative += 1;
  view_.Ingest("east", ++seq, flagged_at + 1 * kSecond, false, Sample(cumulative));
  EXPECT_TRUE(view_.AnomalousRegions(flagged_at + 10 * kSecond).empty());
}

TEST_F(FleetViewTest, StalenessAndDegradedLabelsInDump) {
  view_.set_staleness_window_ns(2 * kSecond);
  view_.Ingest("east", 1, 1 * kSecond, false, Sample(1));
  view_.Ingest("west", 1, 5 * kSecond, true, Sample(1));
  json::Value dump = view_.ToJson(5 * kSecond);
  const json::Value* regions = dump.Find("fleet")->Find("regions");
  ASSERT_EQ(regions->size(), 2u);
  EXPECT_EQ(regions->at(0).Find("region")->string_value(), "east");
  EXPECT_TRUE(regions->at(0).Find("stale")->bool_value());
  EXPECT_FALSE(regions->at(0).Find("degraded")->bool_value());
  EXPECT_EQ(regions->at(1).Find("region")->string_value(), "west");
  EXPECT_FALSE(regions->at(1).Find("stale")->bool_value());
  EXPECT_TRUE(regions->at(1).Find("degraded")->bool_value());
}

TEST_F(FleetViewTest, DumpIsByteDeterministic) {
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    view_.Ingest("west", seq, seq * kSecond, false, Sample(seq * 3));
    view_.Ingest("east", seq, seq * kSecond, false,
                 {{"control_retries", seq * 2}, {"deploys_served", seq}});
  }
  std::string first = view_.ToJson(6 * kSecond).ToString(2);
  std::string second = view_.ToJson(6 * kSecond).ToString(2);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"fleet\""), std::string::npos);
  EXPECT_NE(first.find("incident_totals"), std::string::npos);
}

}  // namespace
}  // namespace innet::obs
