#include <gtest/gtest.h>

#include "src/transport/reno_flow.h"
#include "src/transport/tunnel_experiment.h"

namespace innet::transport {
namespace {

RenoConfig TcpConfig() {
  RenoConfig config;
  config.min_rto_sec = 0.2;
  return config;
}

struct TestPath {
  TestPath(double rate_bps, double rtt_sec, double loss, uint64_t seed = 1)
      : rng(seed) {
    sim::Link::Config link_config;
    link_config.rate_bps = rate_bps;
    link_config.propagation = sim::FromSeconds(rtt_sec / 2);
    link_config.loss_prob = loss;
    link_config.queue_limit_bytes =
        static_cast<uint64_t>(1.5 * rate_bps / 8.0 * rtt_sec);
    channel = std::make_unique<RawLossyChannel>(&clock, &rng, link_config);
  }
  sim::EventQueue clock;
  sim::Rng rng;
  std::unique_ptr<RawLossyChannel> channel;
};

TEST(RenoFlow, LosslessTransferCompletesAtLineRate) {
  TestPath path(10e6, 0.02, 0.0);
  RenoFlow flow(&path.clock, path.channel.get(), TcpConfig(), sim::FromSeconds(0.01));
  flow.EnqueueSegments(1000);  // 1.4 MB
  path.clock.RunUntil(sim::FromSeconds(10));
  EXPECT_EQ(flow.cumulative_acked(), 1000u);
  EXPECT_EQ(flow.receiver_in_order(), 1000u);
  // 1.4 MB over 10 Mb/s is ~1.3 s (including slow start); it finished well
  // within 10 s, so goodput over the transfer beat 1 Mb/s.
  EXPECT_GT(flow.GoodputBps(sim::FromSeconds(10)), 1e6);
}

TEST(RenoFlow, SlowStartGrowsWindow) {
  TestPath path(100e6, 0.02, 0.0);
  RenoFlow flow(&path.clock, path.channel.get(), TcpConfig(), sim::FromSeconds(0.01));
  double initial = flow.cwnd_segments();
  flow.EnqueueSegments(10000);
  path.clock.RunUntil(sim::FromSeconds(1));
  EXPECT_GT(flow.cwnd_segments(), initial * 4);
}

TEST(RenoFlow, RecoversFromLoss) {
  TestPath path(10e6, 0.02, 0.02, /*seed=*/3);
  RenoFlow flow(&path.clock, path.channel.get(), TcpConfig(), sim::FromSeconds(0.01));
  flow.EnqueueSegments(2000);
  path.clock.RunUntil(sim::FromSeconds(60));
  // Every segment is eventually delivered despite 2% loss.
  EXPECT_EQ(flow.receiver_in_order(), 2000u);
  EXPECT_GT(flow.retransmit_count(), 0u);
}

TEST(RenoFlow, LossReducesGoodput) {
  double goodput_clean = 0;
  double goodput_lossy = 0;
  for (double loss : {0.0, 0.03}) {
    TestPath path(100e6, 0.02, loss, /*seed=*/5);
    RenoFlow flow(&path.clock, path.channel.get(), TcpConfig(), sim::FromSeconds(0.01));
    flow.EnqueueSegments(100'000'000);
    path.clock.RunUntil(sim::FromSeconds(10));
    (loss == 0.0 ? goodput_clean : goodput_lossy) = flow.GoodputBps(sim::FromSeconds(10));
  }
  EXPECT_GT(goodput_clean, goodput_lossy * 3);
}

TEST(RenoFlow, FastRetransmitPreferredOverRto) {
  // With moderate loss and plenty of dupacks, most recoveries should be fast
  // retransmits, not timeouts.
  TestPath path(100e6, 0.02, 0.01, /*seed=*/7);
  RenoFlow flow(&path.clock, path.channel.get(), TcpConfig(), sim::FromSeconds(0.01));
  flow.EnqueueSegments(100'000'000);
  path.clock.RunUntil(sim::FromSeconds(10));
  EXPECT_GT(flow.fast_retransmit_count(), flow.rto_count());
}

TEST(TcpTunnelChannel, DeliversInOrderDespiteLoss) {
  TestPath path(10e6, 0.02, 0.05, /*seed=*/11);
  TcpTunnelChannel tunnel(&path.clock, path.channel.get(), TcpConfig(),
                          sim::FromSeconds(0.01));
  std::vector<int> delivered;
  for (int i = 0; i < 50; ++i) {
    tunnel.Send(1400, [&delivered, i] { delivered.push_back(i); });
  }
  path.clock.RunUntil(sim::FromSeconds(60));
  ASSERT_EQ(delivered.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(delivered[static_cast<size_t>(i)], i);  // strictly in order
  }
  EXPECT_GT(tunnel.tunnel_flow().retransmit_count(), 0u);
}

// --- The Figure 14 experiment ----------------------------------------------------

TEST(TunnelExperiment, ZeroLossBothTunnelsFast) {
  TunnelParams params;
  params.duration_sec = 10;
  TunnelResult udp = RunSctpTunnelExperiment(TunnelMode::kUdp, params);
  TunnelResult tcp = RunSctpTunnelExperiment(TunnelMode::kTcp, params);
  EXPECT_GT(udp.goodput_mbps, 50);
  EXPECT_GT(tcp.goodput_mbps, 20);
}

TEST(TunnelExperiment, UdpTunnelBeatsTcpTunnelUnderLoss) {
  // The headline Figure 14 result: 2x-5x at 1-5% loss.
  for (double loss : {0.01, 0.03, 0.05}) {
    TunnelParams params;
    params.loss_rate = loss;
    params.duration_sec = 20;
  params.seed_repeats = 5;
    TunnelResult udp = RunSctpTunnelExperiment(TunnelMode::kUdp, params);
    TunnelResult tcp = RunSctpTunnelExperiment(TunnelMode::kTcp, params);
    EXPECT_GT(udp.goodput_mbps, tcp.goodput_mbps * 1.5)
        << "loss=" << loss << " udp=" << udp.goodput_mbps << " tcp=" << tcp.goodput_mbps;
  }
}

TEST(TunnelExperiment, GoodputDeclinesWithLoss) {
  double previous = 1e9;
  for (double loss : {0.0, 0.01, 0.03, 0.05}) {
    TunnelParams params;
    params.loss_rate = loss;
    params.duration_sec = 15;
    TunnelResult udp = RunSctpTunnelExperiment(TunnelMode::kUdp, params);
    EXPECT_LT(udp.goodput_mbps, previous * 1.05) << "loss=" << loss;
    previous = udp.goodput_mbps;
  }
}

TEST(TunnelExperiment, TcpTunnelCausesSpuriousSctpActivity) {
  TunnelParams params;
  params.loss_rate = 0.03;
  params.duration_sec = 20;
  params.seed_repeats = 5;
  TunnelResult tcp = RunSctpTunnelExperiment(TunnelMode::kTcp, params);
  // The tunnel hides loss from SCTP, but its stalls still provoke SCTP
  // retransmissions/timeouts — and the tunnel itself retransmits plenty.
  EXPECT_GT(tcp.tunnel_retransmits, 0u);
}

}  // namespace
}  // namespace innet::transport
