// Data-plane telemetry coverage: per-element counters and the simulated cost
// model, folded-stack attribution, the deterministic 1-in-N walk sampler and
// its span tree / Perfetto rendering, per-VM and consolidated metric export,
// and the flight recorder's ring + post-mortem bundles.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/click/graph.h"
#include "src/click/profiler.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/platform/watchdog.h"
#include "src/sim/fault_injector.h"

namespace innet {
namespace {

using click::Graph;
using click::GraphProfilerConfig;
using platform::InNetPlatform;
using platform::TenantConfig;
using platform::Vm;
using platform::WatchdogConfig;

constexpr const char* kChainConfig =
    "FromNetfront() -> IPFilter(allow udp) -> IPRewriter(pattern - - 10.0.9.1 - 0 0) "
    "-> ToNetfront();";

Packet Udp(const char* src, const char* dst, uint16_t sport = 1234, uint16_t dport = 80,
           size_t payload = 32) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                        payload);
}

// The global tracer is shared across tests in one process: every test that
// enables it must restore the disabled/empty state.
class TracerGuard {
 public:
  TracerGuard() {
    obs::Tracer().Clear();
    obs::Tracer().Enable();
  }
  ~TracerGuard() {
    obs::Tracer().Enable(false);
    obs::Tracer().SetTimeSource(nullptr);
    obs::Tracer().Clear();
  }
};

TEST(ElementCounters, ProcTimeAndPerPortPacketsAccumulate) {
  std::string error;
  auto graph = Graph::FromText(kChainConfig, &error);
  ASSERT_NE(graph, nullptr) << error;
  for (int i = 0; i < 5; ++i) {
    Packet p = Udp("10.0.0.1", "10.0.0.2");
    graph->InjectAtSource(p);
  }
  click::Element* filter = graph->FindByClass("IPFilter");
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->packets(), 5u);
  EXPECT_GT(filter->proc_ns(), 0u);
  EXPECT_EQ(filter->port_packets(0), 5u);   // all matched "allow udp"
  EXPECT_EQ(filter->port_packets(99), 0u);  // out-of-range reads as zero

  // The cost model is a pure function of (class, length): same packet, same
  // cost, so proc_ns is exactly 5x the per-packet cost.
  Packet probe = Udp("10.0.0.1", "10.0.0.2");
  EXPECT_EQ(filter->proc_ns(), 5 * filter->SimulatedCostNs(probe));
}

TEST(ElementCounters, GraphExportIncludesProcNsAndPortCounters) {
  std::string error;
  auto graph = Graph::FromText(kChainConfig, &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("10.0.0.1", "10.0.0.2");
  graph->InjectAtSource(p);

  obs::MetricsRegistry registry;
  graph->ExportMetrics(&registry, {{"vm", "7"}});
  click::Element* filter = graph->FindByClass("IPFilter");
  ASSERT_NE(filter, nullptr);
  obs::Labels labels = {{"vm", "7"},
                        {"element", filter->name()},
                        {"class", "IPFilter"}};
  EXPECT_EQ(registry.GetCounter("innet_element_proc_ns_total", labels)->value(),
            static_cast<double>(filter->proc_ns()));
  obs::Labels port_labels = labels;
  port_labels.emplace_back("port", "0");
  EXPECT_EQ(registry.GetCounter("innet_element_port_packets_total", port_labels)->value(), 1.0);
}

TEST(FoldedStacks, DeterministicAcrossRunsAndChainShaped) {
  auto run = [] {
    std::string error;
    auto graph = Graph::FromText(kChainConfig, &error);
    EXPECT_NE(graph, nullptr) << error;
    GraphProfilerConfig config;
    config.walk_prefix = "vm:1";
    graph->EnableProfiling(config);
    for (int i = 0; i < 3; ++i) {
      Packet allowed = Udp("10.0.0.1", "10.0.0.2");
      graph->InjectAtSource(allowed);
    }
    Packet denied = Packet::MakeTcp(Ipv4Address::MustParse("10.0.0.1"),
                                    Ipv4Address::MustParse("10.0.0.2"), 1, 2, 0, 8);
    graph->InjectAtSource(denied);
    std::ostringstream out;
    graph->WriteFolded(out);
    return out.str();
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  // Chains deepen one element at a time and carry the walk prefix.
  EXPECT_NE(first.find("vm:1;FromNetfront@0 "), std::string::npos) << first;
  EXPECT_NE(first.find("vm:1;FromNetfront@0;IPFilter@1;IPRewriter@2;ToNetfront@3 "),
            std::string::npos)
      << first;
}

TEST(WalkSampler, OneInNSelectionIsDeterministic) {
  TracerGuard tracer;
  std::string error;
  auto graph = Graph::FromText(kChainConfig, &error);
  ASSERT_NE(graph, nullptr) << error;
  GraphProfilerConfig config;
  config.sample_n = 4;
  config.seed = 7;
  config.walk_prefix = "vm:1";
  graph->EnableProfiling(config);
  for (int i = 0; i < 16; ++i) {
    Packet p = Udp("10.0.0.1", "10.0.0.2");
    graph->InjectAtSource(p);
  }
  ASSERT_NE(graph->profiler(), nullptr);
  EXPECT_EQ(graph->profiler()->walks(), 16u);
  // walks ≡ seed (mod 4): ordinals 3, 7, 11, 15.
  EXPECT_EQ(graph->profiler()->sampled_walks(), 4u);

  // A sampled walk is one connected tree: ingress span, one element span per
  // hop nested under the previous, closed by egress.
  uint64_t ingress_span = 0;
  uint64_t last_span = 0;
  int element_spans = 0;
  bool saw_egress = false;
  for (const obs::TraceEvent& event : obs::Tracer().events()) {
    if (event.target != "vm:1/packet:3") {
      continue;
    }
    if (event.kind == obs::EventKind::kPacketIngress) {
      ingress_span = event.span;
      last_span = event.span;
    } else if (event.kind == obs::EventKind::kElementProcess) {
      EXPECT_EQ(event.parent, last_span);
      last_span = event.span;
      ++element_spans;
    } else if (event.kind == obs::EventKind::kPacketEgress) {
      EXPECT_EQ(event.parent, ingress_span);
      saw_egress = true;
    }
  }
  EXPECT_NE(ingress_span, 0u);
  EXPECT_EQ(element_spans, 4);
  EXPECT_TRUE(saw_egress);
}

TEST(WalkSampler, SampledWalkRendersAsPerfettoSliceChain) {
  TracerGuard tracer;
  std::string error;
  auto graph = Graph::FromText(kChainConfig, &error);
  ASSERT_NE(graph, nullptr) << error;
  GraphProfilerConfig config;
  config.sample_n = 1;  // sample everything
  config.walk_prefix = "vm:1";
  graph->EnableProfiling(config);
  Packet p = Udp("10.0.0.1", "10.0.0.2");
  graph->InjectAtSource(p);

  obs::json::Value perfetto = obs::Tracer().ToPerfettoJson();
  const obs::json::Value* events = perfetto.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int slices = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const obs::json::Value* ph = events->at(i).Find("ph");
    const obs::json::Value* name = events->at(i).Find("name");
    if (ph == nullptr || name == nullptr || ph->string_value() != "X") {
      continue;
    }
    if (name->string_value() == "packet_ingress" ||
        name->string_value() == "element_process") {
      ++slices;
      // A complete slice must carry a duration.
      EXPECT_NE(events->at(i).Find("dur"), nullptr);
    }
  }
  // ingress + 4 elements, all as connected "X" slices (not instants).
  EXPECT_EQ(slices, 5);
}

TEST(PlatformExport, DedicatedAndConsolidatedElementAttribution) {
  sim::EventQueue clock;
  InNetPlatform box(&clock);
  box.EnableDataplaneProfiling(0, 0);
  std::string error;
  Vm::VmId dedicated =
      box.Install(Ipv4Address::MustParse("172.16.3.10"), kChainConfig, &error);
  ASSERT_NE(dedicated, 0u) << error;
  box.SetVmOwner(dedicated, "172.16.3.10");
  std::vector<TenantConfig> tenants(2);
  tenants[0].addr = Ipv4Address::MustParse("172.16.3.20");
  tenants[0].config_text = "FromNetfront() -> IPFilter(allow udp) -> ToNetfront();";
  tenants[1].addr = Ipv4Address::MustParse("172.16.3.21");
  tenants[1].config_text = "FromNetfront() -> RateLimiter(1000) -> ToNetfront();";
  Vm::VmId consolidated = box.InstallConsolidated(tenants, &error);
  ASSERT_NE(consolidated, 0u) << error;
  clock.RunUntil(sim::FromSeconds(2));

  for (const char* dst : {"172.16.3.10", "172.16.3.20", "172.16.3.21"}) {
    Packet p = Udp("9.9.9.9", dst);
    box.HandlePacket(p);
  }
  clock.RunUntil(sim::FromSeconds(3));

  obs::MetricsRegistry registry;
  box.ExportMetrics(&registry);

  // Dedicated guest: plain element names, tenant = the owner set above.
  bool saw_dedicated = false;
  bool saw_consolidated_t1 = false;
  obs::json::Value dump = registry.ToJson();
  const obs::json::Value* metrics = dump.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (size_t i = 0; i < metrics->size(); ++i) {
    const obs::json::Value& entry = metrics->at(i);
    const obs::json::Value* name = entry.Find("name");
    if (name == nullptr || name->string_value() != "innet_element_packets_total") {
      continue;
    }
    const obs::json::Value* labels = entry.Find("labels");
    ASSERT_NE(labels, nullptr);
    const obs::json::Value* tenant = labels->Find("tenant");
    const obs::json::Value* element = labels->Find("element");
    ASSERT_NE(tenant, nullptr);
    ASSERT_NE(element, nullptr);
    if (element->string_value() == "IPFilter@1" && tenant->string_value() == "172.16.3.10") {
      saw_dedicated = true;
    }
    // Consolidated guest: the t1_ prefix attributes the element to the
    // second tenant's address.
    if (element->string_value().rfind("t1_", 0) == 0) {
      EXPECT_EQ(tenant->string_value(), "172.16.3.21");
      saw_consolidated_t1 = true;
    }
  }
  EXPECT_TRUE(saw_dedicated);
  EXPECT_TRUE(saw_consolidated_t1);
}

TEST(FlightRecorder, RingIsBoundedAndOldestFirst) {
  obs::FlightRecorder recorder;
  recorder.set_depth(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(static_cast<uint64_t>(i), obs::EventKind::kPacketIngress, "vm:1", "",
                    i);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  std::vector<obs::FlightEvent> events = recorder.RecentEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().value, 6);  // 6,7,8,9 survive, oldest first
  EXPECT_EQ(events.back().value, 9);
}

TEST(FlightRecorder, PostmortemCapEvictsOldestButKeepsCount) {
  obs::FlightRecorder recorder;
  recorder.set_max_postmortems(2);
  for (int i = 0; i < 3; ++i) {
    obs::PostmortemBundle bundle;
    bundle.target = "vm:" + std::to_string(i);
    recorder.SnapshotPostmortem(std::move(bundle));
  }
  EXPECT_EQ(recorder.postmortems().size(), 2u);
  EXPECT_EQ(recorder.evicted_postmortems(), 1u);
  EXPECT_EQ(recorder.postmortems().front().target, "vm:1");
  // The evicted bundle's cached elements are gone too.
  EXPECT_EQ(recorder.LastElementsFor("vm:0"), nullptr);
}

TEST(FlightRecorder, CrashSnapshotsElementCountersBeforeGraphTeardown) {
  sim::EventQueue clock;
  InNetPlatform box(&clock);
  std::string error;
  Vm::VmId id = box.Install(Ipv4Address::MustParse("172.16.3.10"), kChainConfig, &error);
  ASSERT_NE(id, 0u) << error;
  box.SetVmOwner(id, "172.16.3.10");
  clock.RunUntil(sim::FromSeconds(1));
  for (int i = 0; i < 3; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10");
    box.HandlePacket(p);
  }
  ASSERT_TRUE(box.vms().Crash(id));

  const obs::FlightRecorder& flight = box.flight_recorder();
  ASSERT_EQ(flight.postmortems().size(), 1u);
  const obs::PostmortemBundle& bundle = flight.postmortems().front();
  EXPECT_EQ(bundle.trigger, obs::EventKind::kVmCrash);
  EXPECT_EQ(bundle.target, "vm:" + std::to_string(id));
  EXPECT_EQ(bundle.tenant, "172.16.3.10");
  ASSERT_EQ(bundle.elements.size(), 4u);  // the chain's four elements
  EXPECT_EQ(bundle.elements[1].element_class, "IPFilter");
  EXPECT_EQ(bundle.elements[1].packets, 3u);
  EXPECT_GT(bundle.elements[1].proc_ns, 0u);
  // The ring ends with the trigger itself, preceded by the packet ingresses.
  ASSERT_FALSE(bundle.events.empty());
  EXPECT_EQ(bundle.events.back().kind, obs::EventKind::kVmCrash);
}

TEST(FlightRecorder, WatchdogGiveUpReusesLastSnapshotAfterGraphIsGone) {
  sim::EventQueue clock;
  InNetPlatform box(&clock);
  WatchdogConfig config;
  config.max_retries = 1;
  box.EnableWatchdog(config);
  std::string error;
  Vm::VmId id = box.Install(Ipv4Address::MustParse("172.16.3.10"), kChainConfig, &error);
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));
  Packet p = Udp("9.9.9.9", "172.16.3.10");
  box.HandlePacket(p);

  // Every restart fails from here: crash -> retries exhausted -> give-up.
  sim::FaultPlan plan;
  plan.boot_failure_p = 1.0;
  sim::FaultInjector injector(plan);
  box.SetFaultInjector(&injector);
  ASSERT_TRUE(box.vms().Crash(id));
  clock.RunUntil(sim::FromSeconds(30));
  ASSERT_EQ(box.vms().Find(id), nullptr);  // retired

  const obs::FlightRecorder& flight = box.flight_recorder();
  ASSERT_GE(flight.postmortems().size(), 2u);
  const obs::PostmortemBundle& give_up = flight.postmortems().back();
  EXPECT_EQ(give_up.trigger, obs::EventKind::kWatchdogGiveUp);
  // The graph died with the crash, but the give-up bundle still carries the
  // element counters cached from the crash snapshot.
  EXPECT_EQ(give_up.elements.size(), 4u);
  EXPECT_EQ(give_up.events.back().kind, obs::EventKind::kWatchdogGiveUp);
}

TEST(FlightRecorder, PeriodicCaptureBackfillsTargetsWithoutBundles) {
  obs::FlightRecorder recorder;
  EXPECT_EQ(recorder.LastElementsFor("vm:7"), nullptr);

  // An empty capture is ignored — it would shadow nothing useful.
  recorder.NotePeriodicElements("vm:7", {});
  EXPECT_EQ(recorder.LastElementsFor("vm:7"), nullptr);

  obs::ElementCounterDelta delta;
  delta.element = "IPFilter@1";
  delta.element_class = "IPFilter";
  delta.packets = 5;
  recorder.NotePeriodicElements("vm:7", {delta});
  const std::vector<obs::ElementCounterDelta>* periodic = recorder.LastElementsFor("vm:7");
  ASSERT_NE(periodic, nullptr);
  EXPECT_EQ(periodic->at(0).packets, 5u);

  // A bundle that actually captured elements takes precedence over the
  // periodic store; a newer capture replaces the old one for other targets.
  obs::PostmortemBundle bundle;
  bundle.target = "vm:7";
  delta.packets = 9;
  bundle.elements.push_back(delta);
  recorder.SnapshotPostmortem(std::move(bundle));
  ASSERT_NE(recorder.LastElementsFor("vm:7"), nullptr);
  EXPECT_EQ(recorder.LastElementsFor("vm:7")->at(0).packets, 9u);

  recorder.Clear();
  EXPECT_EQ(recorder.LastElementsFor("vm:7"), nullptr);
}

// The regression this guards: a postmortem taken after the graph is torn down
// AND after the guest's crash bundle was evicted (crash storm) used to report
// zero elements. The watchdog sweep now captures every live graph's counters
// periodically, and TakePostmortem falls back to that capture.
TEST(FlightRecorder, PostmortemAfterTeardownServesPeriodicSweepCounters) {
  sim::EventQueue clock;
  InNetPlatform box(&clock);
  WatchdogConfig config;
  box.EnableWatchdog(config);  // sweeps every 25ms -> periodic captures
  std::string error;
  Vm::VmId id = box.Install(Ipv4Address::MustParse("172.16.3.10"), kChainConfig, &error);
  ASSERT_NE(id, 0u) << error;
  box.SetVmOwner(id, "172.16.3.10");
  clock.RunUntil(sim::FromSeconds(1));
  for (int i = 0; i < 3; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10");
    box.HandlePacket(p);
  }
  // Let at least one watchdog sweep observe the post-traffic counters.
  clock.RunUntil(sim::FromSeconds(2));

  // Keep exactly one bundle so the crash storm below evicts this guest's
  // crash-time snapshot, as a real storm would.
  box.flight_recorder().set_max_postmortems(1);
  ASSERT_TRUE(box.vms().Crash(id));  // graph torn down after the crash bundle
  box.TakePostmortem(obs::EventKind::kVmCrash, 999, "unrelated guest in the storm");
  ASSERT_EQ(box.flight_recorder().postmortems().size(), 1u);
  ASSERT_EQ(box.flight_recorder().postmortems().front().target, "vm:999")
      << "precondition: the crash bundle must be evicted for this test to bite";

  box.TakePostmortem(obs::EventKind::kWatchdogGiveUp, id, "gave up after storm");
  const obs::PostmortemBundle& give_up = box.flight_recorder().postmortems().back();
  EXPECT_EQ(give_up.trigger, obs::EventKind::kWatchdogGiveUp);
  ASSERT_EQ(give_up.elements.size(), 4u)
      << "give-up bundle must serve counters from the last periodic sweep, not empty";
  EXPECT_EQ(give_up.elements[1].element_class, "IPFilter");
  EXPECT_EQ(give_up.elements[1].packets, 3u);
}

TEST(FlightRecorder, JsonRoundTripCarriesBundles) {
  obs::FlightRecorder recorder;
  recorder.Record(5, obs::EventKind::kPacketIngress, "vm:1", "", 64);
  obs::PostmortemBundle bundle;
  bundle.time_ns = 9;
  bundle.trigger = obs::EventKind::kVmCrash;
  bundle.target = "vm:1";
  bundle.tenant = "172.16.3.10";
  obs::ElementCounterDelta delta;
  delta.element = "IPFilter@1";
  delta.element_class = "IPFilter";
  delta.packets = 3;
  bundle.elements.push_back(delta);
  recorder.SnapshotPostmortem(std::move(bundle));

  obs::json::Value json = recorder.ToJson();
  const obs::json::Value* postmortems = json.Find("postmortems");
  ASSERT_NE(postmortems, nullptr);
  ASSERT_EQ(postmortems->size(), 1u);
  const obs::json::Value& entry = postmortems->at(0);
  EXPECT_EQ(entry.Find("trigger")->string_value(), "vm_crash");
  EXPECT_EQ(entry.Find("tenant")->string_value(), "172.16.3.10");
  ASSERT_EQ(entry.Find("elements")->size(), 1u);
  EXPECT_EQ(entry.Find("elements")->at(0).Find("class")->string_value(), "IPFilter");
  ASSERT_EQ(entry.Find("events")->size(), 1u);
  EXPECT_EQ(entry.Find("events")->at(0).Find("kind")->string_value(), "packet_ingress");
}

}  // namespace
}  // namespace innet
