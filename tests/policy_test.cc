#include <gtest/gtest.h>

#include "src/policy/reach_checker.h"
#include "src/policy/reach_spec.h"
#include "src/topology/network.h"

namespace innet::policy {
namespace {

using topology::Network;
using topology::Node;
using topology::NodeKind;

// --- ReachSpec parsing ---------------------------------------------------------------

TEST(ReachSpec, ParsesSimpleStatement) {
  std::string error;
  auto spec = ReachSpec::Parse("reach from internet udp -> client dst port 1500", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->from.spec, "internet");
  EXPECT_EQ(*spec->from.flow.proto(), kProtoUdp);
  ASSERT_EQ(spec->waypoints.size(), 1u);
  EXPECT_EQ(spec->waypoints[0].spec, "client");
  ASSERT_EQ(spec->waypoints[0].flow.port_predicates().size(), 1u);
  EXPECT_EQ(spec->waypoints[0].flow.port_predicates()[0].lo, 1500);
}

TEST(ReachSpec, ParsesPaperFigure4Statement) {
  std::string error;
  auto spec = ReachSpec::Parse(
      "reach from internet udp "
      "-> batcher:dst:0 dst 172.16.15.133 "
      "-> client dst port 1500 "
      "const proto && dst port && payload",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->waypoints.size(), 2u);
  EXPECT_EQ(spec->waypoints[0].spec, "batcher:dst:0");
  EXPECT_EQ(spec->waypoints[0].flow.addr_predicates().size(), 1u);
  ASSERT_EQ(spec->waypoints[1].const_fields.size(), 3u);
  EXPECT_EQ(spec->waypoints[1].const_fields[0], HeaderField::kProto);
  EXPECT_EQ(spec->waypoints[1].const_fields[1], HeaderField::kDstPort);
  EXPECT_EQ(spec->waypoints[1].const_fields[2], HeaderField::kPayload);
}

TEST(ReachSpec, ParsesMultiWaypoint) {
  std::string error;
  auto spec = ReachSpec::Parse(
      "reach from internet tcp src port 80 -> http_optimizer -> client", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->waypoints.size(), 2u);
  EXPECT_EQ(spec->waypoints[0].spec, "http_optimizer");
}

TEST(ReachSpec, RejectsMissingParts) {
  std::string error;
  EXPECT_FALSE(ReachSpec::Parse("from internet -> client", &error).has_value());
  EXPECT_FALSE(ReachSpec::Parse("reach internet -> client", &error).has_value());
  EXPECT_FALSE(ReachSpec::Parse("reach from internet", &error).has_value());
  EXPECT_FALSE(ReachSpec::Parse("reach from internet const proto -> x", &error).has_value());
  EXPECT_FALSE(
      ReachSpec::Parse("reach from internet -> client const bogusfield", &error).has_value());
}

TEST(ReachSpec, ToStringRoundTrips) {
  std::string error;
  auto spec = ReachSpec::Parse(
      "reach from internet udp -> client dst port 1500 const proto && payload", &error);
  ASSERT_TRUE(spec.has_value());
  auto again = ReachSpec::Parse(spec->ToString(), &error);
  ASSERT_TRUE(again.has_value()) << error << " [" << spec->ToString() << "]";
  EXPECT_EQ(again->waypoints.size(), spec->waypoints.size());
  EXPECT_EQ(again->waypoints[0].const_fields, spec->waypoints[0].const_fields);
}

TEST(SplitReachStatements, SplitsOnKeyword) {
  auto statements = SplitReachStatements(
      "reach from internet udp -> client\n"
      "reach from client -> internet");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0], "reach from internet udp -> client");
  EXPECT_EQ(statements[1], "reach from client -> internet");
}

// --- Reach checking on the Figure 3 topology -------------------------------------------

class Figure3Check : public ::testing::Test {
 protected:
  Figure3Check() : network_(Network::MakeFigure3()), graph_(network_.BuildSymGraph()) {}

  NodeResolver Resolver() {
    return [this](const std::string& spec) -> std::vector<std::string> {
      if (spec == "internet") {
        return {"internet"};
      }
      if (spec == "client" || spec == "clients") {
        return {"clients"};
      }
      if (auto addr = Ipv4Address::Parse(spec)) {
        if (const Node* owner = network_.OwnerOf(*addr)) {
          return {owner->name};
        }
        return {};
      }
      if (network_.Find(spec) != nullptr) {
        return {spec};
      }
      return {};
    };
  }

  ReachCheckResult Check(const std::string& statement) {
    std::string error;
    auto spec = ReachSpec::Parse(statement, &error);
    EXPECT_TRUE(spec.has_value()) << error;
    ReachChecker checker(&graph_, Resolver());
    return checker.Check(*spec);
  }

  Network network_;
  symexec::SymGraph graph_;
};

TEST_F(Figure3Check, ClientCanReachInternetOverUdp) {
  // Outbound UDP passes the stateful firewall.
  EXPECT_TRUE(Check("reach from client udp -> internet").satisfied);
}

TEST_F(Figure3Check, InternetCannotInitiateToClients) {
  // Inbound traffic without prior outbound state is dropped by the firewall —
  // except HTTP responses, which the border policy-routes via the cache path.
  EXPECT_FALSE(Check("reach from internet udp -> client").satisfied);
}

TEST_F(Figure3Check, InboundHttpReachesClientsViaOptimizer) {
  auto result = Check("reach from internet tcp src port 80 -> http_optimizer -> client");
  EXPECT_TRUE(result.satisfied) << result.explanation;
}

TEST_F(Figure3Check, InboundHttpAlsoPassesWebCache) {
  auto result =
      Check("reach from internet tcp src port 80 -> web_cache -> http_optimizer -> client");
  EXPECT_TRUE(result.satisfied) << result.explanation;
}

TEST_F(Figure3Check, WrongWaypointOrderFails) {
  auto result =
      Check("reach from internet tcp src port 80 -> http_optimizer -> web_cache -> client");
  EXPECT_FALSE(result.satisfied);
}

TEST_F(Figure3Check, OptimizerMayRewriteHttpPayload) {
  // HTTP payload is NOT invariant across the optimizer path...
  auto rewritten =
      Check("reach from internet tcp src port 80 -> client const payload");
  EXPECT_FALSE(rewritten.satisfied);
  // ...but non-HTTP UDP from the client outward keeps its payload (Figure 1's
  // tunnel-over-UDP use case).
  auto kept = Check("reach from client udp -> internet const payload");
  EXPECT_TRUE(kept.satisfied) << kept.explanation;
}

TEST_F(Figure3Check, ClientHttpToInternetViaNatPath) {
  EXPECT_TRUE(Check("reach from client tcp -> internet").satisfied);
}

TEST_F(Figure3Check, IcmpBlockedOutbound) {
  // The stateful firewall only allows TCP and UDP outbound.
  EXPECT_FALSE(Check("reach from client icmp -> internet").satisfied);
}

TEST_F(Figure3Check, UnresolvableNodeFails) {
  auto result = Check("reach from mars -> client");
  EXPECT_FALSE(result.satisfied);
  EXPECT_NE(result.explanation.find("unresolvable"), std::string::npos);
}

// --- Recursive waypoint matching on hand-built graphs -------------------------------

class HandGraphCheck : public ::testing::Test {
 protected:
  // a -> b -> c -> b -> d (b visited twice; 'b' rewrites dst port to 80 on
  // the second visit via a port-sensitive lambda model).
  HandGraphCheck() {
    using symexec::LambdaModel;
    using symexec::ModelContext;
    using symexec::SymbolicPacket;
    using symexec::Transition;
    int a = graph_.AddNode("a", std::make_shared<symexec::PassthroughModel>());
    int b = graph_.AddNode(
        "b", std::make_shared<LambdaModel>(
                 [](ModelContext*, const SymbolicPacket& p, int in_port)
                     -> std::vector<Transition> {
                   SymbolicPacket out = p;
                   if (in_port == 1) {  // second visit: rewrite
                     out.SetConst(HeaderField::kDstPort, 80);
                   }
                   return {{in_port, std::move(out)}};
                 }));
    int c = graph_.AddNode("c", std::make_shared<symexec::PassthroughModel>());
    int d = graph_.AddNode("d", std::make_shared<symexec::SinkModel>());
    graph_.Connect(a, 0, b, 0);
    graph_.Connect(b, 0, c, 0);
    graph_.Connect(c, 0, b, 1);
    graph_.Connect(b, 1, d, 0);
  }

  ReachCheckResult Check(const std::string& statement) {
    std::string error;
    auto spec = ReachSpec::Parse(statement, &error);
    EXPECT_TRUE(spec.has_value()) << error;
    NodeResolver resolver = [](const std::string& name) -> std::vector<std::string> {
      return {name};
    };
    ReachChecker checker(&graph_, resolver);
    return checker.Check(*spec);
  }

  symexec::SymGraph graph_;
};

TEST_F(HandGraphCheck, RevisitedNodeMatchesAtEitherVisit) {
  // 'b' appears twice; with the ingress pinned to port 9999, only the second
  // visit (after the rewrite) can match "dst port 80" — the matcher must try
  // both occurrences.
  EXPECT_TRUE(Check("reach from a dst port 9999 -> b dst port 80 -> d").satisfied);
  // As the FIRST of two b-waypoints, the port-80 visit leaves no later 'b'
  // for the second waypoint.
  EXPECT_FALSE(Check("reach from a dst port 9999 -> b dst port 80 -> b -> d").satisfied);
  // In the other order it works: first visit (port 9999), second (port 80).
  EXPECT_TRUE(Check("reach from a dst port 9999 -> b -> b dst port 80 -> d").satisfied);
  // Without pinning the ingress, a flow that arrived on port 80 matches the
  // first visit too — "exists" semantics.
  EXPECT_TRUE(Check("reach from a -> b dst port 80 -> b -> d").satisfied);
}

TEST_F(HandGraphCheck, ConstAnchorsAtThePreviousWaypoint) {
  // dst port is rewritten between the first and second 'b' visit: invariant
  // from a to d fails, but from the second b to d holds.
  EXPECT_FALSE(Check("reach from a -> d const dst port").satisfied);
  EXPECT_TRUE(Check("reach from a -> b dst port 80 -> d const dst port").satisfied);
  // Payload is never touched anywhere.
  EXPECT_TRUE(Check("reach from a -> d const payload").satisfied);
}

TEST_F(HandGraphCheck, WaypointOrderIsEnforced) {
  EXPECT_TRUE(Check("reach from a -> c -> d").satisfied);
  EXPECT_FALSE(Check("reach from a -> d -> c").satisfied);
}

// --- Scaling topology -----------------------------------------------------------------

TEST(ScalingTopology, ReachWorksAcrossChain) {
  Network net = Network::MakeScalingTopology(15);
  symexec::SymGraph graph = net.BuildSymGraph();
  NodeResolver resolver = [&net](const std::string& spec) -> std::vector<std::string> {
    if (spec == "internet") {
      return {"internet"};
    }
    if (spec == "client") {
      return {"clients"};
    }
    if (net.Find(spec) != nullptr) {
      return {spec};
    }
    return {};
  };
  std::string error;
  auto spec = ReachSpec::Parse("reach from internet udp -> client", &error);
  ASSERT_TRUE(spec.has_value());
  ReachChecker checker(&graph, resolver);
  auto result = checker.Check(*spec);
  EXPECT_TRUE(result.satisfied) << result.explanation;
  EXPECT_GT(result.engine_steps, 15u);  // traversed the whole chain
}

TEST(ScalingTopology, StepsGrowLinearly) {
  // The core scaling property behind Figure 10: work grows linearly with the
  // middlebox count for a fixed (protocol-constrained) query.
  uint64_t steps_small = 0;
  uint64_t steps_large = 0;
  for (int size : {16, 64}) {
    Network net = Network::MakeScalingTopology(size);
    symexec::SymGraph graph = net.BuildSymGraph();
    NodeResolver resolver = [&net](const std::string& spec) -> std::vector<std::string> {
      if (spec == "internet") {
        return {"internet"};
      }
      if (spec == "client") {
        return {"clients"};
      }
      return {};
    };
    std::string error;
    auto spec = ReachSpec::Parse("reach from internet udp -> client", &error);
    ReachChecker checker(&graph, resolver);
    auto result = checker.Check(*spec);
    EXPECT_TRUE(result.satisfied);
    (size == 16 ? steps_small : steps_large) = result.engine_steps;
  }
  // 4x the middleboxes should cost roughly 4x the steps — allow 2x-8x.
  EXPECT_GT(steps_large, steps_small * 2);
  EXPECT_LT(steps_large, steps_small * 8);
}

}  // namespace
}  // namespace innet::policy
