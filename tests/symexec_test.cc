#include <gtest/gtest.h>

#include "src/click/config_parser.h"
#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"
#include "src/symexec/symbolic_packet.h"
#include "src/symexec/trace_render.h"
#include <algorithm>
#include "src/symexec/value_set.h"

namespace innet::symexec {
namespace {

// --- ValueSet ---------------------------------------------------------------------

TEST(ValueSet, EmptyAndFull) {
  EXPECT_TRUE(ValueSet().IsEmpty());
  EXPECT_FALSE(ValueSet::Full().IsEmpty());
  EXPECT_TRUE(ValueSet::Full().Contains(0));
  EXPECT_TRUE(ValueSet::Full().Contains(UINT64_MAX));
}

TEST(ValueSet, SingleAndRange) {
  ValueSet s = ValueSet::Single(42);
  EXPECT_TRUE(s.Contains(42));
  EXPECT_FALSE(s.Contains(41));
  EXPECT_TRUE(s.IsSingle());
  EXPECT_EQ(s.SingleValue(), 42u);

  ValueSet r = ValueSet::Range(10, 20);
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(20));
  EXPECT_FALSE(r.Contains(21));
  EXPECT_EQ(r.Count(), 11u);
}

TEST(ValueSet, InvertedRangeIsEmpty) { EXPECT_TRUE(ValueSet::Range(20, 10).IsEmpty()); }

TEST(ValueSet, Intersect) {
  ValueSet a = ValueSet::Range(0, 100);
  ValueSet b = ValueSet::Range(50, 150);
  ValueSet c = a.Intersect(b);
  EXPECT_EQ(c, ValueSet::Range(50, 100));
  EXPECT_TRUE(a.Intersect(ValueSet::Range(200, 300)).IsEmpty());
}

TEST(ValueSet, UnionMergesAdjacent) {
  ValueSet u = ValueSet::Range(0, 10).Union(ValueSet::Range(11, 20));
  EXPECT_EQ(u, ValueSet::Range(0, 20));
  ValueSet v = ValueSet::Range(0, 10).Union(ValueSet::Range(12, 20));
  EXPECT_EQ(v.intervals().size(), 2u);
  EXPECT_EQ(v.Count(), 20u);
}

TEST(ValueSet, Subtract) {
  ValueSet s = ValueSet::Range(0, 100).Subtract(ValueSet::Range(40, 60));
  EXPECT_TRUE(s.Contains(39));
  EXPECT_FALSE(s.Contains(40));
  EXPECT_FALSE(s.Contains(60));
  EXPECT_TRUE(s.Contains(61));
  EXPECT_EQ(s.Count(), 80u);
}

TEST(ValueSet, SubtractEverything) {
  EXPECT_TRUE(ValueSet::Range(5, 10).Subtract(ValueSet::Range(0, 100)).IsEmpty());
}

TEST(ValueSet, SubtractFromFull) {
  ValueSet s = ValueSet::Full().Subtract(ValueSet::Single(80));
  EXPECT_FALSE(s.Contains(80));
  EXPECT_TRUE(s.Contains(79));
  EXPECT_TRUE(s.Contains(81));
  EXPECT_TRUE(s.Contains(UINT64_MAX));
}

TEST(ValueSet, FromPrefix) {
  ValueSet s = ValueSet::FromPrefix(Ipv4Prefix::MustParse("10.0.0.0/8"));
  EXPECT_TRUE(s.Contains(Ipv4Address::MustParse("10.1.2.3").value()));
  EXPECT_FALSE(s.Contains(Ipv4Address::MustParse("11.0.0.0").value()));
  EXPECT_EQ(s.Count(), 1u << 24);
}

TEST(ValueSet, SubsetViaSubtract) {
  ValueSet small = ValueSet::Range(5, 10);
  ValueSet big = ValueSet::Range(0, 100);
  EXPECT_TRUE(small.Subtract(big).IsEmpty());
  EXPECT_FALSE(big.Subtract(small).IsEmpty());
}

// --- SymbolicPacket ----------------------------------------------------------------

TEST(SymbolicPacket, UnconstrainedHasFreshVarsPerField) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  EXPECT_FALSE(p.value(HeaderField::kIpSrc).is_const);
  EXPECT_NE(p.ingress_var(HeaderField::kIpSrc), kNoVar);
  EXPECT_NE(p.ingress_var(HeaderField::kIpSrc), p.ingress_var(HeaderField::kIpDst));
  EXPECT_TRUE(p.PossibleValues(HeaderField::kIpSrc) == ValueSet::Full());
}

TEST(SymbolicPacket, ConstrainNarrows) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  EXPECT_TRUE(p.Constrain(HeaderField::kDstPort, ValueSet::Range(1000, 2000)));
  EXPECT_TRUE(p.Constrain(HeaderField::kDstPort, ValueSet::Range(1500, 3000)));
  EXPECT_EQ(p.PossibleValues(HeaderField::kDstPort), ValueSet::Range(1500, 2000));
  EXPECT_FALSE(p.Constrain(HeaderField::kDstPort, ValueSet::Single(99)));
  EXPECT_FALSE(p.feasible());
}

TEST(SymbolicPacket, ConstraintsFollowSharedVars) {
  // Binding dst to src's variable makes constraints on one visible on the
  // other — the mechanism behind implicit-authorization checking.
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  SymbolicValue src = p.value(HeaderField::kIpSrc);
  p.SetValue(HeaderField::kIpDst, src);
  EXPECT_TRUE(p.Constrain(HeaderField::kIpSrc, ValueSet::Range(100, 200)));
  EXPECT_EQ(p.PossibleValues(HeaderField::kIpDst), ValueSet::Range(100, 200));
}

TEST(SymbolicPacket, ConstOverridesVar) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  p.SetConst(HeaderField::kProto, kProtoUdp);
  EXPECT_TRUE(p.value(HeaderField::kProto).is_const);
  EXPECT_TRUE(p.Constrain(HeaderField::kProto, ValueSet::Single(kProtoUdp)));
  EXPECT_FALSE(p.Constrain(HeaderField::kProto, ValueSet::Single(kProtoTcp)));
}

TEST(SymbolicPacket, HistoryAndLastDef) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  p.RecordHop("a", 0);                       // hop 0
  p.SetConst(HeaderField::kDstPort, 1500);   // defined at hop index 1 (next)
  p.RecordHop("b", 0);                       // hop 1
  p.RecordHop("c", 0);                       // hop 2
  EXPECT_EQ(p.FindHop("b"), 1);
  EXPECT_EQ(p.FindHop("missing"), -1);
  // dst port redefined at hop 1: invariant holds from hop 1 to 2 but not 0 to 2.
  EXPECT_TRUE(p.FieldInvariantBetween(HeaderField::kDstPort, 1, 2));
  EXPECT_FALSE(p.FieldInvariantBetween(HeaderField::kDstPort, 0, 2));
  // payload never redefined: invariant across the whole path.
  EXPECT_TRUE(p.FieldInvariantBetween(HeaderField::kPayload, 0, 2));
}

TEST(SymbolicPacket, ConstrainToFlowSpecForksEitherDirection) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  FlowSpec spec = FlowSpec::MustParse("port 80");
  std::vector<SymbolicPacket> branches = p.ConstrainToFlowSpec(spec, &vars);
  EXPECT_EQ(branches.size(), 2u);  // src-port-80 branch + dst-port-80 branch
}

TEST(SymbolicPacket, ConstrainToFlowSpecDirected) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  FlowSpec spec = FlowSpec::MustParse("udp dst port 1500");
  std::vector<SymbolicPacket> branches = p.ConstrainToFlowSpec(spec, &vars);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].PossibleValues(HeaderField::kProto), ValueSet::Single(kProtoUdp));
  EXPECT_EQ(branches[0].PossibleValues(HeaderField::kDstPort), ValueSet::Single(1500));
}

TEST(SymbolicPacket, CanMatchFlowSpecAtHop) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  p.SetConst(HeaderField::kDstPort, 80);
  p.RecordHop("before", 0);  // hop 0: dst port 80
  p.SetConst(HeaderField::kDstPort, 8080);
  p.RecordHop("after", 0);  // hop 1: dst port 8080
  EXPECT_TRUE(p.CanMatchFlowSpec(FlowSpec::MustParse("dst port 80"), 0));
  EXPECT_FALSE(p.CanMatchFlowSpec(FlowSpec::MustParse("dst port 80"), 1));
  EXPECT_TRUE(p.CanMatchFlowSpec(FlowSpec::MustParse("dst port 8080"), 1));
}

// --- Engine on hand-built graphs -----------------------------------------------------

TEST(Engine, LinearPathDelivers) {
  SymGraph graph;
  int a = graph.AddNode("a", std::make_shared<PassthroughModel>());
  int b = graph.AddNode("b", std::make_shared<PassthroughModel>());
  int c = graph.AddNode("c", std::make_shared<SinkModel>());
  graph.Connect(a, 0, b, 0);
  graph.Connect(b, 0, c, 0);

  Engine engine;
  SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
  EngineResult result = engine.Run(graph, a, 0, seed);
  ASSERT_EQ(result.delivered.size(), 1u);
  EXPECT_EQ(result.delivered[0].delivered_at(), "c");
  EXPECT_EQ(result.delivered[0].history().size(), 3u);
}

TEST(Engine, UnconnectedPortDrops) {
  SymGraph graph;
  int a = graph.AddNode("a", std::make_shared<PassthroughModel>());
  Engine engine;
  EngineResult result =
      engine.Run(graph, a, 0, SymbolicPacket::MakeUnconstrained(engine.vars()));
  EXPECT_TRUE(result.delivered.empty());
  EXPECT_EQ(result.dropped.size(), 1u);
}

TEST(Engine, LoopIsBoundedByMaxHops) {
  SymGraph graph;
  int a = graph.AddNode("a", std::make_shared<PassthroughModel>());
  int b = graph.AddNode("b", std::make_shared<PassthroughModel>());
  graph.Connect(a, 0, b, 0);
  graph.Connect(b, 0, a, 0);
  EngineOptions options;
  options.max_hops = 10;
  Engine engine(options);
  EngineResult result =
      engine.Run(graph, a, 0, SymbolicPacket::MakeUnconstrained(engine.vars()));
  EXPECT_TRUE(result.truncated);
  EXPECT_TRUE(result.delivered.empty());
}

TEST(Engine, MergePrefixesNames) {
  SymGraph inner;
  inner.AddNode("x", std::make_shared<SinkModel>());
  SymGraph outer;
  int offset = outer.Merge(inner, "mod1");
  EXPECT_EQ(offset, 0);
  EXPECT_GE(outer.FindNode("mod1/x"), 0);
}

// --- Click element models --------------------------------------------------------------

// Helper: run the module model from its first source with an unconstrained
// packet; return delivered packets.
std::vector<SymbolicPacket> RunModule(const std::string& config_text) {
  std::string error;
  auto config = click::ConfigGraph::Parse(config_text, &error);
  EXPECT_TRUE(config.has_value()) << error;
  auto graph = BuildClickModel(*config, &error);
  EXPECT_TRUE(graph.has_value()) << error;
  std::vector<std::string> sources = ModuleSources(*config);
  EXPECT_FALSE(sources.empty());
  Engine engine;
  SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
  EngineResult result = engine.Run(*graph, graph->FindNode(sources[0]), kPortInject, seed);
  return result.delivered;
}

TEST(ClickModels, FilterConstrains) {
  auto delivered = RunModule(
      "FromNetfront() -> IPFilter(allow udp dst port 1500) -> ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].PossibleValues(HeaderField::kProto), ValueSet::Single(kProtoUdp));
  EXPECT_EQ(delivered[0].PossibleValues(HeaderField::kDstPort), ValueSet::Single(1500));
}

TEST(ClickModels, FilterDenyAllDeliversNothing) {
  auto delivered = RunModule("FromNetfront() -> IPFilter(deny all) -> ToNetfront();");
  EXPECT_TRUE(delivered.empty());
}

TEST(ClickModels, DenyThenAllowExcludesDeniedSpace) {
  auto delivered = RunModule(
      "FromNetfront() -> IPFilter(deny src net 10.0.0.0/8, allow all) -> ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  ValueSet src = delivered[0].PossibleValues(HeaderField::kIpSrc);
  EXPECT_FALSE(src.Contains(Ipv4Address::MustParse("10.1.1.1").value()));
  EXPECT_TRUE(src.Contains(Ipv4Address::MustParse("11.1.1.1").value()));
}

TEST(ClickModels, ClassifierSplitsExclusively) {
  auto delivered = RunModule(
      "src :: FromNetfront(); cls :: IPClassifier(udp, -);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> cls; cls[0] -> a; cls[1] -> b;");
  ASSERT_EQ(delivered.size(), 2u);
  // One branch constrained to UDP delivered at a; the complement at b.
  bool saw_udp_at_a = false;
  bool saw_non_udp_at_b = false;
  for (const SymbolicPacket& p : delivered) {
    ValueSet proto = p.PossibleValues(HeaderField::kProto);
    if (p.delivered_at() == "a" && proto == ValueSet::Single(kProtoUdp)) {
      saw_udp_at_a = true;
    }
    if (p.delivered_at() == "b" && !proto.Contains(kProtoUdp)) {
      saw_non_udp_at_b = true;
    }
  }
  EXPECT_TRUE(saw_udp_at_a);
  EXPECT_TRUE(saw_non_udp_at_b);
}

TEST(ClickModels, RewriterSetsConstAndTracksDefinition) {
  auto delivered = RunModule(
      "FromNetfront() -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  const SymbolicValue& dst = delivered[0].value(HeaderField::kIpDst);
  ASSERT_TRUE(dst.is_const);
  EXPECT_EQ(dst.const_value, Ipv4Address::MustParse("172.16.15.133").value());
  // src untouched: still the ingress variable.
  EXPECT_EQ(delivered[0].value(HeaderField::kIpSrc).var,
            delivered[0].ingress_var(HeaderField::kIpSrc));
}

TEST(ClickModels, PaperFigure4PayloadInvariant) {
  // The full batcher module: payload, proto, and dst port must be invariant
  // from the batcher (TimedUnqueue) to the egress — the check Figure 4 asks
  // the controller to make.
  auto delivered = RunModule(
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 172.16.15.133 - 0 0)"
      "-> batcher :: TimedUnqueue(120,100)"
      "-> dst :: ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  const SymbolicPacket& p = delivered[0];
  int batcher_hop = p.FindHop("batcher");
  int egress_hop = p.FindHop("dst");
  ASSERT_GE(batcher_hop, 0);
  ASSERT_GT(egress_hop, batcher_hop);
  EXPECT_TRUE(p.FieldInvariantBetween(HeaderField::kPayload, batcher_hop, egress_hop));
  EXPECT_TRUE(p.FieldInvariantBetween(HeaderField::kProto, batcher_hop, egress_hop));
  EXPECT_TRUE(p.FieldInvariantBetween(HeaderField::kDstPort, batcher_hop, egress_hop));
  // And the destination address was rewritten before the batcher, not after.
  EXPECT_TRUE(p.FieldInvariantBetween(HeaderField::kIpDst, batcher_hop, egress_hop));
}

TEST(ClickModels, TunnelDecapProducesFreshUnknowns) {
  auto delivered = RunModule("FromNetfront() -> UDPTunnelDecap() -> ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  const SymbolicPacket& p = delivered[0];
  // Inner fields are fresh: not bound to any ingress variable.
  EXPECT_NE(p.value(HeaderField::kIpDst).var, p.ingress_var(HeaderField::kIpDst));
  EXPECT_NE(p.value(HeaderField::kIpSrc).var, p.ingress_var(HeaderField::kIpSrc));
  EXPECT_FALSE(p.value(HeaderField::kIpDst).is_const);
}

TEST(ClickModels, DnsServerSwapsAddresses) {
  auto delivered = RunModule("FromNetfront() -> DnsGeoServer() -> ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  const SymbolicPacket& p = delivered[0];
  EXPECT_EQ(p.value(HeaderField::kIpSrc).var, p.ingress_var(HeaderField::kIpDst));
  EXPECT_EQ(p.value(HeaderField::kIpDst).var, p.ingress_var(HeaderField::kIpSrc));
}

TEST(ClickModels, TeeDuplicates) {
  auto delivered = RunModule(
      "src :: FromNetfront(); t :: Tee(2); a :: ToNetfront(); b :: ToNetfront();"
      "src -> t; t[0] -> a; t[1] -> b;");
  EXPECT_EQ(delivered.size(), 2u);
}

TEST(ClickModels, UnknownClassRejected) {
  std::string error;
  auto model = MakeElementModel("Mystery", "", &error);
  EXPECT_EQ(model, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ClickModels, EmbeddedSinksPassthrough) {
  std::string error;
  auto config = click::ConfigGraph::Parse(
      "src :: FromNetfront(); out :: ToNetfront(); src -> out;", &error);
  ASSERT_TRUE(config.has_value());
  auto graph = BuildClickModel(*config, &error, /*embedded=*/true);
  ASSERT_TRUE(graph.has_value()) << error;
  // In embedded mode the sink forwards instead of delivering; with nothing
  // wired downstream the packet is dropped, not delivered.
  Engine engine;
  EngineResult result = engine.Run(*graph, graph->FindNode("src"), kPortInject,
                                   SymbolicPacket::MakeUnconstrained(engine.vars()));
  EXPECT_TRUE(result.delivered.empty());
  EXPECT_EQ(result.dropped.size(), 1u);
}

TEST(TraceRender, FigureTwoStyleTable) {
  // The rendered trace carries the Figure 2 structure: a header row, one row
  // per hop, named ingress variables, concrete bindings, and '*' marks on
  // redefined cells.
  auto delivered = RunModule(
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "rw :: IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();");
  ASSERT_EQ(delivered.size(), 1u);
  std::string trace = RenderTrace(delivered[0]);
  EXPECT_NE(trace.find("rw"), std::string::npos);
  EXPECT_NE(trace.find("172.16.15.133*"), std::string::npos);  // rewrite marked
  EXPECT_NE(trace.find("proto0=udp"), std::string::npos);      // constrained ingress var
  EXPECT_NE(trace.find("dst port0=1500"), std::string::npos);
  EXPECT_NE(trace.find("payload0"), std::string::npos);        // untouched ingress var
  // One row per hop plus the header.
  size_t rows = static_cast<size_t>(std::count(trace.begin(), trace.end(), '\n'));
  EXPECT_EQ(rows, delivered[0].history().size() + 1);
}

TEST(TraceRender, InfeasibleMarked) {
  VarAllocator vars;
  SymbolicPacket p = SymbolicPacket::MakeUnconstrained(&vars);
  p.Constrain(HeaderField::kProto, ValueSet::Single(kProtoUdp));
  p.Constrain(HeaderField::kProto, ValueSet::Single(kProtoTcp));
  p.RecordHop("x", 0);
  EXPECT_NE(RenderTrace(p).find("infeasible"), std::string::npos);
}

TEST(ClickModels, SourceAndSinkDiscovery) {
  std::string error;
  auto config = click::ConfigGraph::Parse(
      "a :: FromNetfront(); b :: FromNetfront(); x :: ToNetfront();"
      "a -> x; b -> x;",
      &error);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(ModuleSources(*config).size(), 2u);
  EXPECT_EQ(ModuleSinks(*config).size(), 1u);
}

}  // namespace
}  // namespace innet::symexec
