// Federated multi-PoP control plane: region digests over the (lossy,
// partitionable) coordinator<->region channel, latency-aware cross-region
// placement with failover, autonomous degraded mode under partition, and
// belief reconciliation at heal. Cross-region migration routes the exported
// guest through the coordinator and restores it at the source on failure.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/federation/coordinator.h"
#include "src/federation/region.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scheduler/policy.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace innet::federation {
namespace {

controller::ClientRequest StatefulRequest(const std::string& client_id) {
  controller::ClientRequest request;
  request.client_id = client_id;
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - 10.1.0.5 - 0 0) "
      "-> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.1.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.1.0.0/16")};
  return request;
}

RegionController MakeRegion(const std::string& name, sim::EventQueue* clock) {
  return RegionController(name, topology::Network::MakeMultiPop(2), clock);
}

// --- Wire formats ----------------------------------------------------------------------

TEST(FederationWire, ClientRequestRoundTripsThroughJson) {
  controller::ClientRequest request = StatefulRequest("tenant-a");
  request.requirements = "stateful";
  request.pinned_platform = "platform1";

  obs::json::Value encoded = ClientRequestToJson(request);
  // Through the wire: serialize to text and parse back, as the channel does.
  obs::json::Value parsed;
  std::string error;
  ASSERT_TRUE(obs::json::Value::Parse(encoded.ToString(), &parsed, &error)) << error;
  controller::ClientRequest decoded;
  ASSERT_TRUE(ClientRequestFromJson(parsed, &decoded, &error)) << error;

  EXPECT_EQ(decoded.client_id, request.client_id);
  EXPECT_EQ(decoded.requester, request.requester);
  EXPECT_EQ(decoded.click_config, request.click_config);
  EXPECT_EQ(decoded.requirements, request.requirements);
  EXPECT_EQ(decoded.pinned_platform, request.pinned_platform);
  ASSERT_EQ(decoded.whitelist.size(), 1u);
  EXPECT_EQ(decoded.whitelist[0].ToString(), "10.1.0.5");
  ASSERT_EQ(decoded.owned_prefixes.size(), 1u);
  EXPECT_EQ(decoded.owned_prefixes[0].ToString(), "10.1.0.0/16");
}

TEST(FederationWire, RegionDigestRoundTripsThroughJson) {
  RegionDigest digest;
  digest.region = "eu";
  digest.seq = 12;
  digest.generated_ns = 987654321;
  digest.degraded = true;
  digest.platforms = 3;
  digest.tenants = 2;
  digest.memory_total = 4096;
  digest.memory_used = 1024;
  digest.live_modules = {"m_a", "m_b"};

  obs::json::Value parsed;
  std::string error;
  ASSERT_TRUE(obs::json::Value::Parse(digest.ToJson().ToString(), &parsed, &error)) << error;
  RegionDigest decoded;
  ASSERT_TRUE(RegionDigest::FromJson(parsed, &decoded, &error)) << error;
  EXPECT_EQ(decoded.region, "eu");
  EXPECT_EQ(decoded.seq, 12u);
  EXPECT_EQ(decoded.generated_ns, 987654321u);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.platforms, 3u);
  EXPECT_EQ(decoded.tenants, 2u);
  EXPECT_EQ(decoded.memory_total, 4096u);
  EXPECT_EQ(decoded.memory_used, 1024u);
  EXPECT_EQ(decoded.live_modules, digest.live_modules);
  EXPECT_DOUBLE_EQ(decoded.utilization(), 0.25);
}

// --- Region ranking --------------------------------------------------------------------

TEST(RankRegions, PrefersLowRttThenLoadAndDemotesSuspects) {
  std::vector<scheduler::RegionCandidate> candidates;
  candidates.push_back({"far-idle", 60.0, 0.0, false, false});     // score 60
  candidates.push_back({"near-busy", 10.0, 0.8, false, false});    // score 50
  candidates.push_back({"near-idle", 10.0, 0.0, false, false});    // score 10
  candidates.push_back({"nearest-degraded", 2.0, 0.0, true, false});  // suspect
  candidates.push_back({"nearest-stale", 2.0, 0.0, false, true});     // suspect

  std::vector<std::string> ranked = scheduler::RankRegions(candidates);
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked[0], "near-idle");
  EXPECT_EQ(ranked[1], "near-busy");
  EXPECT_EQ(ranked[2], "far-idle");
  // Degraded/stale regions rank strictly after every healthy one, even with
  // the best RTT; among themselves they keep score order (tie -> name).
  EXPECT_EQ(ranked[3], "nearest-degraded");
  EXPECT_EQ(ranked[4], "nearest-stale");
}

TEST(RankRegions, AnomalousRegionsDemoteWithinTheirFreshnessClass) {
  std::vector<scheduler::RegionCandidate> candidates;
  candidates.push_back({"quiet-far", 40.0, 0.0, false, false, false});
  candidates.push_back({"anomalous-near", 5.0, 0.0, false, false, true});
  candidates.push_back({"quiet-near", 10.0, 0.0, false, false, false});
  candidates.push_back({"stale-quiet", 2.0, 0.0, false, true, false});

  std::vector<std::string> ranked = scheduler::RankRegions(candidates);
  ASSERT_EQ(ranked.size(), 4u);
  // The anomaly flag demotes past every quiet fresh region (even with the
  // best score) but not past the suspect class: a flagged fresh region is
  // still a better bet than a stale belief.
  EXPECT_EQ(ranked[0], "quiet-near");
  EXPECT_EQ(ranked[1], "quiet-far");
  EXPECT_EQ(ranked[2], "anomalous-near");
  EXPECT_EQ(ranked[3], "stale-quiet");
}

// --- Digests and placement -------------------------------------------------------------

TEST(Federation, DigestPollingBuildsFleetView) {
  sim::EventQueue clock;
  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);

  EXPECT_EQ(coordinator.ViewOf("east"), nullptr);
  coordinator.StartDigestPolling();
  const RegionDigest* view = coordinator.ViewOf("east");
  ASSERT_NE(view, nullptr);  // ideal WAN: the first poll completed inline
  EXPECT_EQ(view->region, "east");
  EXPECT_EQ(view->platforms, 2u);
  EXPECT_EQ(view->tenants, 0u);

  // Polls keep refreshing the view with a monotonic sequence.
  uint64_t first_seq = view->seq;
  clock.RunUntil(clock.now() + sim::FromSeconds(2));
  EXPECT_GT(coordinator.ViewOf("east")->seq, first_seq);
}

TEST(Federation, DeployLandsInAffinityRegion) {
  sim::EventQueue clock;
  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);
  coordinator.StartDigestPolling();

  FederatedRequest federated;
  federated.request = StatefulRequest("tenant-west");
  federated.client_region = "west";
  std::optional<FederatedDeploy> result;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { result = r; });
  ASSERT_TRUE(result.has_value());  // ideal WAN: synchronous
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->region, "west");
  EXPECT_FALSE(result->failed_over);
  EXPECT_EQ(result->attempts, 1u);
  EXPECT_EQ(west.orchestrator().placement_count(), 1u);
  EXPECT_EQ(east.orchestrator().placement_count(), 0u);
  EXPECT_EQ(coordinator.BeliefOf(result->module_id), "west");
  EXPECT_EQ(coordinator.StaleBeliefCount(), 1u);  // digest predates the deploy
  clock.RunUntil(clock.now() + sim::FromSeconds(2));
  EXPECT_EQ(coordinator.StaleBeliefCount(), 0u);  // next poll confirms it
}

TEST(Federation, PartitionedAffinityRegionFailsOverToSurvivor) {
  sim::EventQueue clock;
  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);
  coordinator.StartDigestPolling();

  coordinator.SetRegionPartitioned("east", true);
  FederatedRequest federated;
  federated.request = StatefulRequest("tenant-east");
  federated.client_region = "east";
  std::optional<FederatedDeploy> result;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { result = r; });
  EXPECT_FALSE(result.has_value());  // retrying against the partition
  clock.RunUntil(clock.now() + sim::FromSeconds(30));

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->region, "west");  // the survivor took it
  EXPECT_TRUE(result->failed_over);
  EXPECT_EQ(result->attempts, 2u);
  EXPECT_EQ(west.orchestrator().placement_count(), 1u);
  EXPECT_EQ(east.orchestrator().placement_count(), 0u);
}

// --- Degraded mode ---------------------------------------------------------------------

TEST(Federation, RegionEntersAndClearsDegradedModeOnCoordinatorSilence) {
  sim::EventQueue clock;
  RegionController region = MakeRegion("solo", &clock);
  region.EnableDegradedMonitor(2 * sim::kSecond);
  EXPECT_FALSE(region.degraded());

  // Silence: the region flags itself degraded and queues digest updates,
  // but keeps serving deploys on local state.
  clock.RunUntil(clock.now() + sim::FromSeconds(5));
  EXPECT_TRUE(region.degraded());
  EXPECT_GT(region.queued_digests(), 0u);
  auto local = region.orchestrator().Deploy(StatefulRequest("local-tenant"));
  EXPECT_TRUE(local.outcome.accepted) << local.outcome.reason;

  // Contact clears the flag (and flushes the queue counter).
  region.NoteCoordinatorContact();
  EXPECT_FALSE(region.degraded());
  EXPECT_EQ(region.queued_digests(), 0u);

  // The degraded bit travels in the digest while set.
  clock.RunUntil(clock.now() + sim::FromSeconds(5));
  EXPECT_TRUE(region.degraded());
  EXPECT_TRUE(region.BuildDigest().degraded);
}

// --- Cross-region migration ------------------------------------------------------------

TEST(Federation, MigrationMovesStatefulTenantAndUpdatesBeliefs) {
  sim::EventQueue clock;
  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);
  coordinator.StartDigestPolling();

  FederatedRequest federated;
  federated.request = StatefulRequest("mover");
  federated.client_region = "east";
  std::optional<FederatedDeploy> deployed;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { deployed = r; });
  ASSERT_TRUE(deployed.has_value());
  ASSERT_TRUE(deployed->ok) << deployed->error;
  ASSERT_EQ(deployed->region, "east");
  clock.RunUntil(clock.now() + sim::FromSeconds(2));  // guest boots

  std::optional<FederatedMigration> migration;
  coordinator.Migrate(deployed->module_id, "west",
                      [&](const FederatedMigration& r) { migration = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(10));  // suspend takes sim time

  ASSERT_TRUE(migration.has_value());
  ASSERT_TRUE(migration->ok) << migration->error;
  EXPECT_EQ(migration->source_region, "east");
  EXPECT_EQ(migration->target_region, "west");
  EXPECT_FALSE(migration->new_module_id.empty());
  EXPECT_EQ(east.orchestrator().placement_count(), 0u);
  EXPECT_EQ(west.orchestrator().placement_count(), 1u);
  EXPECT_TRUE(west.orchestrator().HasPlacement(migration->new_module_id));
  EXPECT_FALSE(east.orchestrator().HasPlacement(deployed->module_id));
  EXPECT_EQ(coordinator.BeliefOf(migration->new_module_id), "west");
  clock.RunUntil(clock.now() + sim::FromSeconds(2));
  EXPECT_EQ(coordinator.StaleBeliefCount(), 0u);
}

TEST(Federation, MigrationToUnknownRegionAborts) {
  sim::EventQueue clock;
  RegionController east = MakeRegion("east", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);

  FederatedRequest federated;
  federated.request = StatefulRequest("stays");
  federated.client_region = "east";
  std::optional<FederatedDeploy> deployed;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { deployed = r; });
  ASSERT_TRUE(deployed.has_value() && deployed->ok);

  std::optional<FederatedMigration> migration;
  coordinator.Migrate(deployed->module_id, "nowhere",
                      [&](const FederatedMigration& r) { migration = r; });
  ASSERT_TRUE(migration.has_value());
  EXPECT_FALSE(migration->ok);
  EXPECT_FALSE(migration->lost);
  // The tenant never moved: still placed in east, belief intact.
  EXPECT_EQ(east.orchestrator().placement_count(), 1u);
  EXPECT_EQ(coordinator.BeliefOf(deployed->module_id), "east");
}

// --- Heal-time reconciliation ----------------------------------------------------------

TEST(Federation, HealReconcilesBeliefsAgainstAutonomousRegionChanges) {
  sim::EventQueue clock;
  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);
  coordinator.StartDigestPolling();

  FederatedRequest federated;
  federated.request = StatefulRequest("doomed");
  federated.client_region = "east";
  std::optional<FederatedDeploy> deployed;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { deployed = r; });
  ASSERT_TRUE(deployed.has_value() && deployed->ok);
  ASSERT_EQ(deployed->region, "east");
  clock.RunUntil(clock.now() + sim::FromSeconds(2));

  // Partition east, then change its placement truth behind the
  // coordinator's back: the region kills one tenant and deploys another on
  // purely local authority (autonomous degraded operation).
  coordinator.SetRegionPartitioned("east", true);
  ASSERT_TRUE(east.orchestrator().Kill(deployed->module_id));
  auto autonomous = east.orchestrator().Deploy(StatefulRequest("autonomous"));
  ASSERT_TRUE(autonomous.outcome.accepted) << autonomous.outcome.reason;
  clock.RunUntil(clock.now() + sim::FromSeconds(5));
  EXPECT_EQ(coordinator.BeliefOf(deployed->module_id), "east");  // stale belief

  // Heal: the coordinator pulls a fresh digest and converges — the dead
  // tenant's belief is dropped, the autonomous one discovered.
  coordinator.SetRegionPartitioned("east", false);
  EXPECT_EQ(coordinator.BeliefOf(deployed->module_id), "");
  EXPECT_EQ(coordinator.BeliefOf(autonomous.outcome.module_id), "east");
  EXPECT_EQ(coordinator.StaleBeliefCount(), 0u);

  // An explicit re-reconcile is a no-op once beliefs converged.
  FederationCoordinator::ReconcileOutcome again = coordinator.ReconcileRegion("east");
  EXPECT_EQ(again.stale_dropped, 0u);
  EXPECT_EQ(again.discovered, 0u);
}

// --- Cross-region trace propagation ----------------------------------------------------

TEST(Federation, CrossRegionMigrationFormsOneConnectedSpanTree) {
  sim::EventQueue clock;
  obs::Tracer().Clear();
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });

  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);
  coordinator.StartDigestPolling();

  FederatedRequest federated;
  federated.request = StatefulRequest("mover");
  federated.client_region = "east";
  std::optional<FederatedDeploy> deployed;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { deployed = r; });
  ASSERT_TRUE(deployed.has_value() && deployed->ok);
  EXPECT_NE(deployed->trace_id, 0u);
  clock.RunUntil(clock.now() + sim::FromSeconds(2));

  std::optional<FederatedMigration> migration;
  coordinator.Migrate(deployed->module_id, "west",
                      [&](const FederatedMigration& r) { migration = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(10));

  std::vector<obs::TraceEvent> events = obs::Tracer().events();
  obs::Tracer().Clear();
  obs::Tracer().Enable(false);
  obs::Tracer().SetTimeSource(nullptr);

  ASSERT_TRUE(migration.has_value());
  ASSERT_TRUE(migration->ok) << migration->error;
  ASSERT_NE(migration->trace_id, 0u);

  // No orphans: every parented event points at a recorded span. This is the
  // invariant trace propagation buys — the export leg in east and the import
  // leg in west hang off the coordinator's root instead of floating free.
  std::set<uint64_t> spans;
  for (const obs::TraceEvent& event : events) spans.insert(event.span);
  for (const obs::TraceEvent& event : events) {
    EXPECT_TRUE(event.parent == 0 || spans.count(event.parent))
        << "orphan parent on " << event.target;
  }

  // The migration root reaches a connected tree spanning both regions: grow
  // the reachable set until fixpoint, then demand the cross-region legs.
  std::set<uint64_t> tree = {migration->trace_id};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const obs::TraceEvent& event : events) {
      if (tree.count(event.parent) && !tree.count(event.span)) {
        tree.insert(event.span);
        grew = true;
      }
    }
  }
  size_t in_tree = 0;
  size_t control_sends = 0;
  bool completion_in_tree = false;
  for (const obs::TraceEvent& event : events) {
    if (!tree.count(event.span)) continue;
    ++in_tree;
    if (event.kind == obs::EventKind::kControlSend) ++control_sends;
    if (event.kind == obs::EventKind::kRegionMigrate && event.span != migration->trace_id) {
      completion_in_tree = true;
    }
  }
  EXPECT_GE(in_tree, 6u) << "migration tree too small to span export+import";
  EXPECT_GE(control_sends, 2u) << "both WAN legs should be in the tree";
  EXPECT_TRUE(completion_in_tree) << "completion event must parent to the root";
}

TEST(Federation, DuplicatedWanRequestsDoNotDuplicateSpansOrFleetDeltas) {
  sim::EventQueue clock;
  obs::Tracer().Clear();
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });

  RegionController east = MakeRegion("east", &clock);
  RegionController west = MakeRegion("west", &clock);
  FederationCoordinator coordinator(&clock);
  coordinator.AddRegion(&east);
  coordinator.AddRegion(&west);

  sim::FaultPlan plan;
  plan.seed = 7;
  plan.region_dup_p = 0.5;
  plan.region_reorder_p = 0.3;
  plan.region_delay_mean_ms = 2.0;
  sim::FaultInjector faults(plan);
  coordinator.SetFaultInjector(&faults);

  uint64_t received_before = static_cast<uint64_t>(
      obs::Registry()
          .GetCounter("innet_federation_digests_total", {{"event", "received"}})
          ->value());
  coordinator.StartDigestPolling();

  FederatedRequest federated;
  federated.request = StatefulRequest("dup-tenant");
  federated.client_region = "east";
  std::optional<FederatedDeploy> result;
  coordinator.Deploy(federated, [&](const FederatedDeploy& r) { result = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(30));

  std::vector<obs::TraceEvent> events = obs::Tracer().events();
  obs::Tracer().Clear();
  obs::Tracer().Enable(false);
  obs::Tracer().SetTimeSource(nullptr);

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_GT(faults.region_duplicated(), 0u) << "plan should have injected duplicates";

  // Endpoint dedup answers WAN replays from the response cache without
  // re-running the handler, so the handler-side deploy span exists exactly
  // once no matter how many copies of the request arrived.
  size_t deploy_requests = 0;
  for (const obs::TraceEvent& event : events) {
    if (event.kind == obs::EventKind::kDeployRequest &&
        event.target == "client:dup-tenant") {
      ++deploy_requests;
    }
  }
  EXPECT_EQ(deploy_requests, 1u);
  EXPECT_EQ(east.orchestrator().placement_count() + west.orchestrator().placement_count(), 1u);

  // FleetView ingestion stays in lockstep with the digests the coordinator
  // actually accepted: duplicated/reordered WAN copies never double-count.
  uint64_t received_after = static_cast<uint64_t>(
      obs::Registry()
          .GetCounter("innet_federation_digests_total", {{"event", "received"}})
          ->value());
  EXPECT_EQ(coordinator.fleet_view().ingests(), received_after - received_before);
  EXPECT_EQ(coordinator.fleet_view().FleetTotal("deploys_served"), 1u);
}

}  // namespace
}  // namespace innet::federation
