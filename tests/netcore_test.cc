#include <gtest/gtest.h>

#include "src/netcore/checksum.h"
#include "src/netcore/fields.h"
#include "src/netcore/flowspec.h"
#include "src/netcore/ip.h"
#include "src/netcore/packet.h"

namespace innet {
namespace {

// --- Ipv4Address -----------------------------------------------------------------

TEST(Ipv4Address, ParsesDottedQuad) {
  auto addr = Ipv4Address::Parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0x0A010203u);
  EXPECT_EQ(addr->ToString(), "10.1.2.3");
}

TEST(Ipv4Address, ParsesEdgeValues) {
  EXPECT_EQ(Ipv4Address::MustParse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4Address::MustParse("255.255.255.255").value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2.x").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2.3 ").has_value());
}

TEST(Ipv4Address, ClassifiesSpecialRanges) {
  EXPECT_TRUE(Ipv4Address::MustParse("10.0.0.1").IsPrivate());
  EXPECT_TRUE(Ipv4Address::MustParse("172.16.0.1").IsPrivate());
  EXPECT_TRUE(Ipv4Address::MustParse("172.31.255.255").IsPrivate());
  EXPECT_FALSE(Ipv4Address::MustParse("172.32.0.1").IsPrivate());
  EXPECT_TRUE(Ipv4Address::MustParse("192.168.4.4").IsPrivate());
  EXPECT_FALSE(Ipv4Address::MustParse("8.8.8.8").IsPrivate());
  EXPECT_TRUE(Ipv4Address::MustParse("127.0.0.1").IsLoopback());
  EXPECT_TRUE(Ipv4Address::MustParse("224.0.0.1").IsMulticast());
  EXPECT_TRUE(Ipv4Address().IsUnspecified());
}

TEST(Ipv4Address, Ordering) {
  Ipv4Address a = Ipv4Address::MustParse("10.0.0.1");
  Ipv4Address b = Ipv4Address::MustParse("10.0.0.2");
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Ipv4Address::MustParse("10.0.0.1"));
}

// --- Ipv4Prefix ------------------------------------------------------------------

TEST(Ipv4Prefix, ParsesAndMasksHostBits) {
  Ipv4Prefix prefix = Ipv4Prefix::MustParse("10.1.2.3/16");
  EXPECT_EQ(prefix.base(), Ipv4Address::MustParse("10.1.0.0"));
  EXPECT_EQ(prefix.length(), 16);
  EXPECT_EQ(prefix.ToString(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, BareAddressIsSlash32) {
  Ipv4Prefix prefix = Ipv4Prefix::MustParse("10.1.2.3");
  EXPECT_EQ(prefix.length(), 32);
  EXPECT_TRUE(prefix.Contains(Ipv4Address::MustParse("10.1.2.3")));
  EXPECT_FALSE(prefix.Contains(Ipv4Address::MustParse("10.1.2.4")));
}

TEST(Ipv4Prefix, ContainsAndOverlaps) {
  Ipv4Prefix wide = Ipv4Prefix::MustParse("10.0.0.0/8");
  Ipv4Prefix narrow = Ipv4Prefix::MustParse("10.5.0.0/16");
  Ipv4Prefix other = Ipv4Prefix::MustParse("192.168.0.0/16");
  EXPECT_TRUE(wide.Contains(narrow));
  EXPECT_FALSE(narrow.Contains(wide));
  EXPECT_TRUE(wide.Overlaps(narrow));
  EXPECT_TRUE(narrow.Overlaps(wide));
  EXPECT_FALSE(wide.Overlaps(other));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  Ipv4Prefix all = Ipv4Prefix::MustParse("0.0.0.0/0");
  EXPECT_TRUE(all.Contains(Ipv4Address::MustParse("1.2.3.4")));
  EXPECT_TRUE(all.Contains(Ipv4Address::MustParse("255.255.255.255")));
}

TEST(Ipv4Prefix, FirstAndLast) {
  Ipv4Prefix prefix = Ipv4Prefix::MustParse("10.1.0.0/16");
  EXPECT_EQ(prefix.first(), Ipv4Address::MustParse("10.1.0.0"));
  EXPECT_EQ(prefix.last(), Ipv4Address::MustParse("10.1.255.255"));
}

TEST(Ipv4Prefix, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::Parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("10.0.0/8").has_value());
}

// --- Checksums -------------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example: the checksum of {0x00,0x01,0xf2,0x03,0xf4,0xf5,0xf6,0xf7}.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  uint32_t partial = ChecksumPartial(data, sizeof(data));
  EXPECT_EQ(partial, 0xddf2u);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> 0x0402.
  EXPECT_EQ(ChecksumPartial(data, sizeof(data)), 0x0402u);
}

TEST(Checksum, VerifiesToZero) {
  const uint8_t data[] = {0x45, 0x00, 0x00, 0x1c};
  uint16_t sum = Checksum(data, sizeof(data));
  // Appending the checksum makes the total verify (complement sum == 0).
  uint8_t with_sum[6] = {0x45, 0x00, 0x00, 0x1c, static_cast<uint8_t>(sum >> 8),
                         static_cast<uint8_t>(sum & 0xFF)};
  EXPECT_EQ(Checksum(with_sum, sizeof(with_sum)), 0u);
}

// --- Packet ----------------------------------------------------------------------

TEST(Packet, BuildsValidUdp) {
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                             Ipv4Address::MustParse("10.0.0.2"), 1234, 1500, 100);
  EXPECT_EQ(p.protocol(), kProtoUdp);
  EXPECT_EQ(p.src_port(), 1234);
  EXPECT_EQ(p.dst_port(), 1500);
  EXPECT_EQ(p.payload_length(), 100u);
  EXPECT_EQ(p.length(), kEthHeaderLen + kIpHeaderLen + 8 + 100);
  EXPECT_TRUE(p.VerifyIpChecksum());
}

TEST(Packet, BuildsValidTcpWithFlags) {
  Packet p = Packet::MakeTcp(Ipv4Address::MustParse("10.0.0.1"),
                             Ipv4Address::MustParse("10.0.0.2"), 4000, 80, kTcpSyn);
  EXPECT_EQ(p.protocol(), kProtoTcp);
  EXPECT_EQ(p.tcp_flags(), kTcpSyn);
  EXPECT_TRUE(p.VerifyIpChecksum());
}

TEST(Packet, MutatorsKeepWireBytesInSync) {
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                             Ipv4Address::MustParse("10.0.0.2"), 1, 2, 10);
  p.set_ip_dst(Ipv4Address::MustParse("172.16.15.133"));
  p.set_dst_port(9999);
  p.RefreshChecksums();

  Packet reparsed = Packet::FromWire(p.data(), p.length());
  ASSERT_GT(reparsed.length(), 0u);
  EXPECT_EQ(reparsed.ip_dst(), Ipv4Address::MustParse("172.16.15.133"));
  EXPECT_EQ(reparsed.dst_port(), 9999);
  EXPECT_TRUE(reparsed.VerifyIpChecksum());
}

TEST(Packet, ChecksumDetectsCorruption) {
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                             Ipv4Address::MustParse("10.0.0.2"), 1, 2, 10);
  EXPECT_TRUE(p.VerifyIpChecksum());
  p.mutable_data()[kEthHeaderLen + 8] ^= 0xFF;  // corrupt TTL byte without refresh
  EXPECT_FALSE(p.VerifyIpChecksum());
}

TEST(Packet, DecrementTtl) {
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 1, 2);
  EXPECT_EQ(p.ttl(), 64);
  EXPECT_TRUE(p.DecrementTtl());
  EXPECT_EQ(p.ttl(), 63);
  p.set_ttl(1);
  EXPECT_FALSE(p.DecrementTtl());  // would expire
  EXPECT_EQ(p.ttl(), 1);
}

TEST(Packet, PayloadRoundTrip) {
  Packet p = Packet::MakeTcp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 1, 80, 0, 64);
  p.SetPayload("GET /index.html HTTP/1.1");
  EXPECT_NE(p.PayloadView().find("GET /index.html"), std::string_view::npos);
  EXPECT_TRUE(p.VerifyIpChecksum());
}

TEST(Packet, FlowKeyDistinguishesFlows) {
  Packet a = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 10, 20);
  Packet b = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 10, 21);
  Packet c = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 10, 20);
  EXPECT_NE(a.FlowKey(), b.FlowKey());
  EXPECT_EQ(a.FlowKey(), c.FlowKey());
}

TEST(Packet, IcmpEcho) {
  Packet p = Packet::MakeIcmpEcho(Ipv4Address::MustParse("1.1.1.1"),
                                  Ipv4Address::MustParse("2.2.2.2"), 7, 3);
  EXPECT_EQ(p.protocol(), kProtoIcmp);
  EXPECT_TRUE(p.VerifyIpChecksum());
}

TEST(Packet, FromWireRejectsGarbage) {
  uint8_t junk[64] = {};
  Packet p = Packet::FromWire(junk, sizeof(junk));
  EXPECT_EQ(p.length(), 0u);
  Packet q = Packet::FromWire(junk, 4);  // too short
  EXPECT_EQ(q.length(), 0u);
}

// --- FlowSpec --------------------------------------------------------------------

TEST(FlowSpec, EmptyMatchesEverything) {
  FlowSpec spec = FlowSpec::MustParse("");
  EXPECT_TRUE(spec.IsWildcard());
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 1, 2);
  EXPECT_TRUE(spec.Matches(p));
}

TEST(FlowSpec, ProtocolMatch) {
  FlowSpec udp = FlowSpec::MustParse("udp");
  Packet u = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 1, 2);
  Packet t = Packet::MakeTcp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("2.2.2.2"), 1, 2, 0);
  EXPECT_TRUE(udp.Matches(u));
  EXPECT_FALSE(udp.Matches(t));
}

TEST(FlowSpec, DirectedPortMatch) {
  FlowSpec spec = FlowSpec::MustParse("udp dst port 1500");
  Packet hit = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                               Ipv4Address::MustParse("2.2.2.2"), 1500, 1500);
  Packet miss = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                                Ipv4Address::MustParse("2.2.2.2"), 1500, 1501);
  EXPECT_TRUE(spec.Matches(hit));
  EXPECT_FALSE(spec.Matches(miss));
}

TEST(FlowSpec, UndirectedPortMatchesEitherSide) {
  FlowSpec spec = FlowSpec::MustParse("port 80");
  Packet by_dst = Packet::MakeTcp(Ipv4Address::MustParse("1.1.1.1"),
                                  Ipv4Address::MustParse("2.2.2.2"), 4000, 80, 0);
  Packet by_src = Packet::MakeTcp(Ipv4Address::MustParse("1.1.1.1"),
                                  Ipv4Address::MustParse("2.2.2.2"), 80, 4000, 0);
  Packet neither = Packet::MakeTcp(Ipv4Address::MustParse("1.1.1.1"),
                                   Ipv4Address::MustParse("2.2.2.2"), 1, 2, 0);
  EXPECT_TRUE(spec.Matches(by_dst));
  EXPECT_TRUE(spec.Matches(by_src));
  EXPECT_FALSE(spec.Matches(neither));
}

TEST(FlowSpec, PortRange) {
  FlowSpec spec = FlowSpec::MustParse("dst port 1000-2000");
  Packet in_range = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                                    Ipv4Address::MustParse("2.2.2.2"), 1, 1500);
  Packet below = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                                 Ipv4Address::MustParse("2.2.2.2"), 1, 999);
  EXPECT_TRUE(spec.Matches(in_range));
  EXPECT_FALSE(spec.Matches(below));
}

TEST(FlowSpec, HostAndNet) {
  FlowSpec host = FlowSpec::MustParse("src host 10.0.0.1");
  FlowSpec net = FlowSpec::MustParse("dst net 192.168.0.0/16");
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                             Ipv4Address::MustParse("192.168.3.4"), 1, 2);
  EXPECT_TRUE(host.Matches(p));
  EXPECT_TRUE(net.Matches(p));
  Packet q = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.2"),
                             Ipv4Address::MustParse("172.16.0.1"), 1, 2);
  EXPECT_FALSE(host.Matches(q));
  EXPECT_FALSE(net.Matches(q));
}

TEST(FlowSpec, BareAddressIsHost) {
  FlowSpec spec = FlowSpec::MustParse("dst 172.16.15.133");
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("1.1.1.1"),
                             Ipv4Address::MustParse("172.16.15.133"), 1, 2);
  EXPECT_TRUE(spec.Matches(p));
}

TEST(FlowSpec, Conjunction) {
  FlowSpec spec = FlowSpec::MustParse("tcp and src port 80 and dst net 10.0.0.0/8");
  Packet hit = Packet::MakeTcp(Ipv4Address::MustParse("8.8.8.8"),
                               Ipv4Address::MustParse("10.1.1.1"), 80, 5000, 0);
  Packet wrong_proto = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                       Ipv4Address::MustParse("10.1.1.1"), 80, 5000);
  EXPECT_TRUE(spec.Matches(hit));
  EXPECT_FALSE(spec.Matches(wrong_proto));
}

TEST(FlowSpec, RejectsMalformed) {
  EXPECT_FALSE(FlowSpec::Parse("dst port abc").has_value());
  EXPECT_FALSE(FlowSpec::Parse("port 70000").has_value());
  EXPECT_FALSE(FlowSpec::Parse("host 300.1.1.1").has_value());
  EXPECT_FALSE(FlowSpec::Parse("tcp udp").has_value());  // contradictory protocols
  EXPECT_FALSE(FlowSpec::Parse("dst port 10-5").has_value());
}

TEST(FlowSpec, ToStringRoundTrips) {
  FlowSpec spec = FlowSpec::MustParse("udp dst host 10.0.0.1 src port 53");
  FlowSpec again = FlowSpec::MustParse(spec.ToString());
  Packet p = Packet::MakeUdp(Ipv4Address::MustParse("9.9.9.9"),
                             Ipv4Address::MustParse("10.0.0.1"), 53, 7000);
  EXPECT_EQ(spec.Matches(p), again.Matches(p));
  EXPECT_TRUE(again.Matches(p));
}

// --- HeaderField names -------------------------------------------------------------

TEST(HeaderFields, ParseKnownNames) {
  EXPECT_EQ(ParseHeaderField("proto"), HeaderField::kProto);
  EXPECT_EQ(ParseHeaderField("dst port"), HeaderField::kDstPort);
  EXPECT_EQ(ParseHeaderField("src port"), HeaderField::kSrcPort);
  EXPECT_EQ(ParseHeaderField("payload"), HeaderField::kPayload);
  EXPECT_EQ(ParseHeaderField("src host"), HeaderField::kIpSrc);
  EXPECT_EQ(ParseHeaderField("dst"), HeaderField::kIpDst);
  EXPECT_FALSE(ParseHeaderField("bogus").has_value());
}

TEST(HeaderFields, NamesRoundTrip) {
  for (int i = 0; i < kNumHeaderFields; ++i) {
    HeaderField f = static_cast<HeaderField>(i);
    auto parsed = ParseHeaderField(std::string(HeaderFieldName(f)));
    ASSERT_TRUE(parsed.has_value()) << HeaderFieldName(f);
    EXPECT_EQ(*parsed, f);
  }
}

}  // namespace
}  // namespace innet
