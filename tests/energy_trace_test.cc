#include <gtest/gtest.h>

#include "src/energy/radio_model.h"
#include "src/trace/backbone_trace.h"

namespace innet {
namespace {

using energy::RadioEnergyModel;
using energy::RadioParams;

// --- Radio energy model -----------------------------------------------------------

TEST(RadioModel, IdleBaselineWhenNoActivity) {
  RadioEnergyModel model;
  EXPECT_DOUBLE_EQ(model.AveragePowerMw({}, 100.0), model.params().idle_mw);
}

TEST(RadioModel, SingleActivityAddsTailEnergy) {
  RadioParams params;
  RadioEnergyModel model(params);
  double avg = model.AveragePowerMw({0.0}, 100.0);
  double expected = (params.dch_tail_sec * params.dch_mw +
                     params.fach_tail_sec * params.fach_mw +
                     (100.0 - params.dch_tail_sec - params.fach_tail_sec) * params.idle_mw) /
                    100.0;
  EXPECT_NEAR(avg, expected, 1e-6);
}

TEST(RadioModel, OverlappingActivitiesShareTail) {
  RadioEnergyModel model;
  // Two wake-ups 1 s apart cost less than two isolated wake-ups, because the
  // second extends the first's DCH tail instead of a fresh climb.
  double together = model.AveragePowerMw({0.0, 1.0}, 100.0);
  double apart = model.AveragePowerMw({0.0, 50.0}, 100.0);
  EXPECT_LT(together, apart);
}

TEST(RadioModel, Figure13CalibrationPoints) {
  // The Figure 13 anchors: ~240 mW at 30 s batching, ~140 mW at 240 s.
  RadioEnergyModel model;
  double at_30 = model.PeriodicActivityPowerMw(30, 3600);
  double at_240 = model.PeriodicActivityPowerMw(240, 3600);
  EXPECT_NEAR(at_30, 240, 30);
  EXPECT_NEAR(at_240, 140, 20);
}

TEST(RadioModel, BatchingMonotonicallySavesEnergy) {
  RadioEnergyModel model;
  double previous = 1e9;
  for (double interval : {30.0, 60.0, 120.0, 240.0}) {
    double power = model.PeriodicActivityPowerMw(interval, 3600);
    EXPECT_LT(power, previous) << interval;
    previous = power;
  }
}

TEST(RadioModel, HttpVsHttpsDownloadPower) {
  // §8: 570 mW over HTTP vs 650 mW over HTTPS at 8 Mb/s (≈15% more).
  RadioEnergyModel model;
  double http = model.DownloadPowerMw(8e6, /*https=*/false);
  double https = model.DownloadPowerMw(8e6, /*https=*/true);
  EXPECT_NEAR(http, 570, 10);
  EXPECT_NEAR(https, 650, 10);
  EXPECT_NEAR(https / http, 1.15, 0.03);
}

TEST(RadioModel, ActivityOutsideWindowClamped) {
  RadioEnergyModel model;
  double avg = model.AveragePowerMw({99.5}, 100.0);
  EXPECT_GT(avg, model.params().idle_mw);
  EXPECT_LT(avg, model.params().idle_mw + 10);  // only half a second of DCH
}

// --- Backbone trace ------------------------------------------------------------------

TEST(BackboneTrace, FlowsFitTheWindow) {
  trace::TraceConfig config;
  auto flows = trace::SynthesizeBackboneTrace(config);
  ASSERT_GT(flows.size(), 10000u);
  for (const trace::Flow& flow : flows) {
    EXPECT_GE(flow.start_sec, 0);
    EXPECT_LT(flow.end_sec, config.duration_sec);
    EXPECT_GT(flow.end_sec, flow.start_sec);
    EXPECT_LT(flow.client_id, config.client_pool);
  }
}

TEST(BackboneTrace, Deterministic) {
  trace::TraceConfig config;
  auto a = trace::SynthesizeBackboneTrace(config);
  auto b = trace::SynthesizeBackboneTrace(config);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].start_sec, b[0].start_sec);
  EXPECT_EQ(a.back().client_id, b.back().client_id);
}

TEST(BackboneTrace, AnalysisMatchesPaperRanges) {
  // §6 MAWI: 1,600-4,000 concurrent connections, 400-840 active openers.
  trace::TraceConfig config;
  auto flows = trace::SynthesizeBackboneTrace(config);
  auto stats = trace::AnalyzeTrace(flows, config.duration_sec);
  EXPECT_GE(stats.max_concurrent_connections, 1000u);
  EXPECT_LE(stats.max_concurrent_connections, 4500u);
  EXPECT_GE(stats.max_active_openers, 300u);
  EXPECT_LE(stats.max_active_openers, 1200u);
  EXPECT_GT(stats.mean_concurrent_connections, 0);
  EXPECT_LE(stats.mean_concurrent_connections,
            static_cast<double>(stats.max_concurrent_connections));
}

TEST(BackboneTrace, AnalysisHandlesHandConstructedFlows) {
  std::vector<trace::Flow> flows = {
      {0.0, 10.0, 1},
      {5.0, 15.0, 2},
      {5.0, 15.0, 2},  // same client, second connection
      {20.0, 25.0, 3},
  };
  auto stats = trace::AnalyzeTrace(flows, 30);
  EXPECT_EQ(stats.total_flows, 4u);
  EXPECT_EQ(stats.max_concurrent_connections, 3u);  // t in (5,10): all three open
  EXPECT_EQ(stats.max_active_openers, 2u);          // clients 1 and 2
}

TEST(BackboneTrace, EmptyTrace) {
  auto stats = trace::AnalyzeTrace({}, 900);
  EXPECT_EQ(stats.total_flows, 0u);
  EXPECT_EQ(stats.max_concurrent_connections, 0u);
}

TEST(BackboneTrace, PaperConclusionOnePlatformSuffices) {
  // The §6 takeaway: a single In-Net platform supporting ~1,000 tenants can
  // run a personalized firewall for every active MAWI source.
  trace::TraceConfig config;
  auto flows = trace::SynthesizeBackboneTrace(config);
  auto stats = trace::AnalyzeTrace(flows, config.duration_sec);
  EXPECT_LE(stats.max_active_openers, 1000u);
}

}  // namespace
}  // namespace innet
