// Failure injection: exhausted resources, mid-transition teardown, corrupted
// packets, controller pool exhaustion, and malformed inputs everywhere.
#include <gtest/gtest.h>

#include "src/click/elements.h"
#include "src/controller/controller.h"
#include "src/controller/orchestrator.h"
#include "src/platform/platform.h"
#include "src/sim/fault_injector.h"
#include "src/sim/rng.h"
#include "src/symexec/click_models.h"
#include "src/topology/network.h"
#include <algorithm>
#include <limits>
#include <set>

namespace innet {
namespace {

using controller::ClientRequest;
using controller::Controller;
using controller::Deployment;
using controller::DeployOutcome;
using controller::RequesterClass;
using platform::InNetPlatform;
using platform::Vm;
using platform::VmCostModel;
using platform::VmKind;
using platform::VmState;

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         32);
}

// --- Platform resource exhaustion --------------------------------------------------

TEST(Failure, OnDemandBootFailsWhenMemoryExhausted) {
  sim::EventQueue clock;
  VmCostModel model;
  InNetPlatform platform(&clock, model, 2 * model.MemoryBytes(VmKind::kClickOs));
  platform.RegisterOnDemand(Ipv4Address::MustParse("172.16.3.10"),
                            "FromNetfront() -> ToNetfront();");
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  // Four distinct flows; only two VMs fit.
  for (uint16_t flow = 0; flow < 4; ++flow) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(6000 + flow), 80);
    platform.HandlePacket(p);
  }
  clock.RunUntil(sim::FromSeconds(2));
  EXPECT_EQ(platform.vms().vm_count(), 2u);
  EXPECT_EQ(egressed, 2);  // the overflow flows' packets are lost, not crashed
}

TEST(Failure, DestroyWhileBootingNeverRuns) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  bool became_ready = false;
  Vm* vm = platform.vms().Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();",
                                 [&](Vm*) { became_ready = true; }, &error);
  ASSERT_NE(vm, nullptr);
  ASSERT_TRUE(platform.vms().Destroy(vm->id()));
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_FALSE(became_ready);  // the boot-completion callback found it gone
  EXPECT_EQ(platform.vms().memory_used(), 0u);
}

TEST(Failure, DestroyWhileSuspendingIsSafe) {
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr);
  clock.RunUntil(sim::FromMillis(100));
  bool suspend_done = false;
  ASSERT_TRUE(vms.Suspend(vm->id(), [&] { suspend_done = true; }));
  ASSERT_TRUE(vms.Destroy(vm->id()));
  clock.RunUntil(sim::FromSeconds(1));  // the stale suspend timer fires harmlessly
  EXPECT_TRUE(suspend_done);            // callback runs; the VM is simply gone
  EXPECT_EQ(vms.vm_count(), 0u);
}

TEST(Failure, DestroyWhileBootingCancelsOnReadyDespiteLaterBoots) {
  // Regression: the first guest's on_ready must stay cancelled even when a
  // second guest is booting in the same state at the same time — the
  // completion event must not attach to the wrong (or freed) guest.
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  bool first_ready = false;
  bool second_ready = false;
  Vm* first = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();",
                         [&](Vm*) { first_ready = true; }, &error);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(vms.Destroy(first->id()));
  Vm* second = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();",
                          [&](Vm*) { second_ready = true; }, &error);
  ASSERT_NE(second, nullptr);
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_FALSE(first_ready);
  EXPECT_TRUE(second_ready);
  EXPECT_EQ(vms.memory_used(), vms.cost_model().MemoryBytes(VmKind::kClickOs));
}

TEST(Failure, RemainingCapacityGuardsZeroCostModel) {
  // A custom cost model with a free VM kind must not divide by zero.
  sim::EventQueue clock;
  VmCostModel model;
  model.clickos_memory_bytes = 0;
  platform::VmManager vms(&clock, model, 1ull << 30);
  EXPECT_EQ(vms.RemainingCapacity(VmKind::kClickOs), std::numeric_limits<uint64_t>::max());
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr) << error;
  EXPECT_EQ(vms.memory_used(), 0u);
}

// --- Crashes ----------------------------------------------------------------------

TEST(Failure, CrashDuringBootReleasesMemoryAndSkipsOnReady) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.boot_failure_p = 1.0;  // every boot dies
  sim::FaultInjector injector(plan);
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  vms.SetFaultInjector(&injector);
  std::string error;
  bool became_ready = false;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();",
                      [&](Vm*) { became_ready = true; }, &error);
  ASSERT_NE(vm, nullptr);
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_FALSE(became_ready);
  EXPECT_EQ(vm->state(), VmState::kCrashed);
  EXPECT_EQ(vms.memory_used(), 0u);
  EXPECT_EQ(vms.crash_count(), 1u);
  EXPECT_EQ(injector.boot_failures_injected(), 1u);
}

TEST(Failure, CrashDuringResumeDoesNotRevive) {
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr);
  Vm::VmId id = vm->id();
  clock.RunUntil(sim::FromSeconds(1));
  ASSERT_TRUE(vms.Suspend(id));
  clock.RunUntil(sim::FromSeconds(2));
  ASSERT_EQ(vm->state(), VmState::kSuspended);

  bool resume_done = false;
  ASSERT_TRUE(vms.Resume(id, [&] { resume_done = true; }));
  ASSERT_TRUE(vms.Crash(id));  // dies mid-resume
  EXPECT_EQ(vms.memory_used(), 0u);
  clock.RunUntil(sim::FromSeconds(3));  // the stale resume timer fires
  EXPECT_TRUE(resume_done);             // callback runs; the guest stays down
  EXPECT_EQ(vm->state(), VmState::kCrashed);
  EXPECT_EQ(vms.memory_used(), 0u);  // the stale timer must not re-admit it

  // A crashed guest restarts cleanly afterwards.
  bool restarted = false;
  ASSERT_TRUE(vms.Restart(id, [&](Vm*) { restarted = true; }, &error));
  clock.RunUntil(sim::FromSeconds(4));
  EXPECT_TRUE(restarted);
  EXPECT_EQ(vm->state(), VmState::kRunning);
}

TEST(Failure, CrashDuringSuspendKeepsAccountingConsistent) {
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr);
  clock.RunUntil(sim::FromSeconds(1));
  ASSERT_TRUE(vms.Suspend(vm->id()));
  ASSERT_TRUE(vms.Crash(vm->id()));  // dies while writing the image out
  clock.RunUntil(sim::FromSeconds(2));  // stale suspend timer fires harmlessly
  EXPECT_EQ(vm->state(), VmState::kCrashed);
  EXPECT_EQ(vms.memory_used(), 0u);  // released exactly once
}

TEST(Failure, UninstallClearsStaleBuffersBeforeReinstall) {
  // Packets buffered for a crashed tenant must not replay into a different
  // tenant that later installs at the same address.
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  Ipv4Address addr = Ipv4Address::MustParse("172.16.3.10");
  Vm::VmId first = platform.Install(addr, "FromNetfront() -> ToNetfront();", &error);
  ASSERT_NE(first, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));
  ASSERT_TRUE(platform.vms().Crash(first));
  for (uint16_t i = 0; i < 3; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(7000 + i), 80);
    platform.HandlePacket(p);  // stalls against the crashed guest
  }
  ASSERT_TRUE(platform.Uninstall(addr));
  EXPECT_EQ(platform.abandoned_packets(), 3u);

  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  Vm::VmId second = platform.Install(addr, "FromNetfront() -> ToNetfront();", &error);
  ASSERT_NE(second, 0u) << error;
  clock.RunUntil(sim::FromSeconds(2));
  EXPECT_EQ(egressed, 0);  // the old tenant's packets did not replay
  Packet fresh = Udp("9.9.9.9", "172.16.3.10", 7100, 80);
  platform.HandlePacket(fresh);
  EXPECT_EQ(egressed, 1);
}

TEST(Failure, ResumeOfDestroyedVmRejected) {
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr);
  Vm::VmId id = vm->id();
  clock.RunUntil(sim::FromMillis(100));
  vms.Destroy(id);
  EXPECT_FALSE(vms.Resume(id));
  EXPECT_FALSE(vms.Suspend(id));
}

// --- Corrupted traffic ----------------------------------------------------------------

TEST(Failure, CorruptedPacketsDropAtCheckIPHeader) {
  std::string error;
  auto graph = click::Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> CheckIPHeader() -> IPFilter(allow all) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  sim::Rng rng(13);
  int corrupted_delivered = 0;
  for (int i = 0; i < 200; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
    // Flip a random byte in the IP header without refreshing checksums.
    size_t offset = kEthHeaderLen + rng.NextBelow(kIpHeaderLen);
    uint8_t flip = static_cast<uint8_t>(1 + rng.NextBelow(255));
    p.mutable_data()[offset] ^= flip;
    uint64_t before = graph->FindAs<click::ToNetfront>("sink")->packet_count();
    graph->InjectAtSource(p);
    uint64_t after = graph->FindAs<click::ToNetfront>("sink")->packet_count();
    corrupted_delivered += static_cast<int>(after - before);
  }
  EXPECT_EQ(corrupted_delivered, 0);
}

// --- Controller exhaustion and malformed inputs ------------------------------------------

TEST(Failure, AddressPoolExhaustionRejectsCleanly) {
  // Each platform pool serves 240 module addresses; request more than all
  // three platforms can hold and the controller must refuse, not wrap.
  Controller ctrl(topology::Network::MakeFigure3());
  ClientRequest request;
  request.requester = RequesterClass::kThirdParty;
  request.click_config =
      "FromNetfront() -> IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};

  int accepted = 0;
  for (int i = 0; i < 750; ++i) {
    request.client_id = "tenant" + std::to_string(i);
    DeployOutcome outcome = ctrl.Deploy(request);
    if (!outcome.accepted) {
      break;
    }
    ++accepted;
  }
  EXPECT_GT(accepted, 200);   // pools really filled up
  EXPECT_LT(accepted, 750);   // and exhaustion was reported
  // All assigned addresses distinct.
  std::set<uint32_t> addrs;
  for (const auto& dep : ctrl.deployments()) {
    EXPECT_TRUE(addrs.insert(dep.addr.value()).second);
  }
}

TEST(Failure, MalformedEverything) {
  Controller ctrl(topology::Network::MakeFigure3());
  ClientRequest request;
  request.client_id = "x";
  const char* bad_configs[] = {
      "",                                     // empty
      "FromNetfront( -> ToNetfront();",       // unbalanced
      "a :: NotAClass(); a -> a;",            // unknown class
      "FromNetfront() -> IPFilter() -> ToNetfront();",  // element arg error
      "x :: Counter(); x -> Discard();",      // no ingress
  };
  for (const char* config : bad_configs) {
    request.click_config = config;
    EXPECT_FALSE(ctrl.Deploy(request).accepted) << config;
  }
  EXPECT_TRUE(ctrl.deployments().empty());
}

TEST(Failure, OrchestratorSurvivesConsolidationRebuildFailure) {
  // A stateless, safe config that the *consolidator* rejects (no ToNetfront
  // cannot happen post-verification, so instead exercise the rebuild path by
  // killing during operation).
  sim::EventQueue clock;
  controller::Orchestrator orchestrator(topology::Network::MakeFigure3(), &clock);
  ClientRequest request;
  request.client_id = "a";
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  auto result = orchestrator.Deploy(request);
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  // Kill twice: the second must fail without corrupting state.
  EXPECT_TRUE(orchestrator.Kill(result.outcome.module_id));
  EXPECT_FALSE(orchestrator.Kill(result.outcome.module_id));
  EXPECT_TRUE(orchestrator.controller().deployments().empty());
}

// --- Platform failover -------------------------------------------------------------------

ClientRequest FirewallRequest(const std::string& client_id, uint16_t port,
                              const std::string& client_addr) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port " + std::to_string(port) +
      ") -> IPRewriter(pattern - - " + client_addr + " - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse(client_addr)};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

TEST(Failure, FailoverRecoversTenantsAndPreservesPolicyVerdicts) {
  sim::EventQueue clock;
  controller::Orchestrator orchestrator(topology::Network::MakeFigure3(), &clock);

  // One consolidated (stateless) tenant and one dedicated (stateful) tenant.
  auto stateless = orchestrator.Deploy(FirewallRequest("a", 1500, "10.10.0.5"));
  ASSERT_TRUE(stateless.outcome.accepted) << stateless.outcome.reason;
  ASSERT_TRUE(stateless.consolidated);
  ClientRequest stateful_req = FirewallRequest("b", 1600, "10.10.0.6");
  stateful_req.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port 1600) ->"
      "IPRewriter(pattern - - 10.10.0.6 - 0 0) -> TimedUnqueue(120,100) -> ToNetfront();";
  auto stateful = orchestrator.Deploy(stateful_req);
  ASSERT_TRUE(stateful.outcome.accepted) << stateful.outcome.reason;
  ASSERT_FALSE(stateful.consolidated);
  ASSERT_EQ(stateless.outcome.platform, stateful.outcome.platform);
  const std::string dead = stateless.outcome.platform;

  auto report = orchestrator.MarkPlatformFailed(dead);
  EXPECT_EQ(report.tenants_affected, 2u);
  EXPECT_EQ(report.recovered, 2u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_GE(report.reverify_ms, 0.0);

  // The survivors carry the tenants with the original verdicts intact: the
  // stateless one re-merged into a shared VM, the stateful one got its own.
  ASSERT_EQ(report.remapped.size(), 2u);
  for (const auto& [old_id, new_id] : report.remapped) {
    const Deployment* dep = nullptr;
    for (const auto& d : orchestrator.controller().deployments()) {
      if (d.module_id == new_id) dep = &d;
    }
    ASSERT_NE(dep, nullptr) << new_id;
    EXPECT_NE(dep->platform, dead);
    EXPECT_FALSE(dep->sandboxed);  // both passed static checking before and after
  }
  size_t shared_tenants = 0;
  size_t live_vms = 0;
  for (const char* name : {"platform1", "platform2", "platform3"}) {
    if (name != dead) {
      shared_tenants += orchestrator.ConsolidatedTenantCount(name);
      live_vms += orchestrator.platform(name)->vms().vm_count();
    }
  }
  EXPECT_EQ(shared_tenants, 1u);  // exactly one consolidated tenant re-merged
  EXPECT_EQ(live_vms, 2u);        // the shared VM plus the stateful tenant's own
  EXPECT_EQ(orchestrator.platform(dead)->vms().vm_count(), 0u);

  // New deployments skip the dead platform until it is restored.
  auto next = orchestrator.Deploy(FirewallRequest("c", 1700, "10.10.0.7"));
  ASSERT_TRUE(next.outcome.accepted) << next.outcome.reason;
  EXPECT_NE(next.outcome.platform, dead);
  orchestrator.RestorePlatform(dead);
  EXPECT_FALSE(orchestrator.controller().IsPlatformFailed(dead));
}

TEST(Failure, FailoverReportsTenantLostWhenNoSurvivorSatisfiesRequirements) {
  // In Figure 3, only platform3 is reachable from the Internet (platform1 is
  // behind the NAT, platform2 sees TCP only). A tenant whose requirement
  // names the Internet is pinned there — when platform3 dies, failover must
  // re-verify and report the tenant lost, not silently misplace it on a
  // surviving platform that violates the requirement.
  sim::EventQueue clock;
  controller::Orchestrator orchestrator(topology::Network::MakeFigure3(), &clock);
  ClientRequest request = FirewallRequest("a", 1500, "10.10.0.5");
  request.requirements = "reach from internet udp -> client dst port 1500";
  auto result = orchestrator.Deploy(request);
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  ASSERT_EQ(result.outcome.platform, "platform3");

  auto report = orchestrator.MarkPlatformFailed("platform3");
  EXPECT_EQ(report.tenants_affected, 1u);
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_EQ(report.lost, 1u);
  ASSERT_EQ(report.lost_module_ids.size(), 1u);
  EXPECT_EQ(report.lost_module_ids[0], result.outcome.module_id);
  EXPECT_TRUE(orchestrator.controller().deployments().empty());
  for (const char* name : {"platform1", "platform2"}) {
    EXPECT_EQ(orchestrator.platform(name)->vms().vm_count(), 0u) << name;
  }
}

// --- Engine robustness --------------------------------------------------------------------

TEST(Failure, SymbolicEngineBoundsPathExplosion) {
  // A chain of Tee(2) doubles paths per stage; the engine must truncate
  // rather than exhaust memory.
  // Both Tee outputs feed the next stage, so path count doubles per stage.
  std::string config_text = "src :: FromNetfront();";
  std::string prev = "src";
  for (int i = 0; i < 24; ++i) {
    std::string name = "t" + std::to_string(i);
    config_text += name + " :: Tee(2);" + prev + " -> " + name + ";";
    if (i > 0) {
      config_text += "t" + std::to_string(i - 1) + "[1] -> [0]" + name + ";";
    }
    prev = name;
  }
  config_text += prev + " -> ToNetfront(); " + prev + "[1] -> Discard();";
  std::string error;
  auto config = click::ConfigGraph::Parse(config_text, &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::EngineOptions options;
  options.max_paths = 1000;
  symexec::Engine engine(options);
  auto result = engine.Run(*model, model->FindNode("src"), symexec::kPortInject,
                           symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.steps, 2000u);
}

}  // namespace
}  // namespace innet
