// Failure injection: exhausted resources, mid-transition teardown, corrupted
// packets, controller pool exhaustion, and malformed inputs everywhere.
#include <gtest/gtest.h>

#include "src/click/elements.h"
#include "src/controller/controller.h"
#include "src/controller/orchestrator.h"
#include "src/platform/platform.h"
#include "src/sim/rng.h"
#include "src/symexec/click_models.h"
#include "src/topology/network.h"
#include <set>

namespace innet {
namespace {

using controller::ClientRequest;
using controller::Controller;
using controller::DeployOutcome;
using controller::RequesterClass;
using platform::InNetPlatform;
using platform::Vm;
using platform::VmCostModel;
using platform::VmKind;

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         32);
}

// --- Platform resource exhaustion --------------------------------------------------

TEST(Failure, OnDemandBootFailsWhenMemoryExhausted) {
  sim::EventQueue clock;
  VmCostModel model;
  InNetPlatform platform(&clock, model, 2 * model.MemoryBytes(VmKind::kClickOs));
  platform.RegisterOnDemand(Ipv4Address::MustParse("172.16.3.10"),
                            "FromNetfront() -> ToNetfront();");
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  // Four distinct flows; only two VMs fit.
  for (uint16_t flow = 0; flow < 4; ++flow) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(6000 + flow), 80);
    platform.HandlePacket(p);
  }
  clock.RunUntil(sim::FromSeconds(2));
  EXPECT_EQ(platform.vms().vm_count(), 2u);
  EXPECT_EQ(egressed, 2);  // the overflow flows' packets are lost, not crashed
}

TEST(Failure, DestroyWhileBootingNeverRuns) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  bool became_ready = false;
  Vm* vm = platform.vms().Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();",
                                 [&](Vm*) { became_ready = true; }, &error);
  ASSERT_NE(vm, nullptr);
  ASSERT_TRUE(platform.vms().Destroy(vm->id()));
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_FALSE(became_ready);  // the boot-completion callback found it gone
  EXPECT_EQ(platform.vms().memory_used(), 0u);
}

TEST(Failure, DestroyWhileSuspendingIsSafe) {
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr);
  clock.RunUntil(sim::FromMillis(100));
  bool suspend_done = false;
  ASSERT_TRUE(vms.Suspend(vm->id(), [&] { suspend_done = true; }));
  ASSERT_TRUE(vms.Destroy(vm->id()));
  clock.RunUntil(sim::FromSeconds(1));  // the stale suspend timer fires harmlessly
  EXPECT_TRUE(suspend_done);            // callback runs; the VM is simply gone
  EXPECT_EQ(vms.vm_count(), 0u);
}

TEST(Failure, ResumeOfDestroyedVmRejected) {
  sim::EventQueue clock;
  platform::VmManager vms(&clock, VmCostModel{}, 1ull << 30);
  std::string error;
  Vm* vm = vms.Create(VmKind::kClickOs, "FromNetfront() -> ToNetfront();", nullptr, &error);
  ASSERT_NE(vm, nullptr);
  Vm::VmId id = vm->id();
  clock.RunUntil(sim::FromMillis(100));
  vms.Destroy(id);
  EXPECT_FALSE(vms.Resume(id));
  EXPECT_FALSE(vms.Suspend(id));
}

// --- Corrupted traffic ----------------------------------------------------------------

TEST(Failure, CorruptedPacketsDropAtCheckIPHeader) {
  std::string error;
  auto graph = click::Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> CheckIPHeader() -> IPFilter(allow all) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  sim::Rng rng(13);
  int corrupted_delivered = 0;
  for (int i = 0; i < 200; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
    // Flip a random byte in the IP header without refreshing checksums.
    size_t offset = kEthHeaderLen + rng.NextBelow(kIpHeaderLen);
    uint8_t flip = static_cast<uint8_t>(1 + rng.NextBelow(255));
    p.mutable_data()[offset] ^= flip;
    uint64_t before = graph->FindAs<click::ToNetfront>("sink")->packet_count();
    graph->InjectAtSource(p);
    uint64_t after = graph->FindAs<click::ToNetfront>("sink")->packet_count();
    corrupted_delivered += static_cast<int>(after - before);
  }
  EXPECT_EQ(corrupted_delivered, 0);
}

// --- Controller exhaustion and malformed inputs ------------------------------------------

TEST(Failure, AddressPoolExhaustionRejectsCleanly) {
  // Each platform pool serves 240 module addresses; request more than all
  // three platforms can hold and the controller must refuse, not wrap.
  Controller ctrl(topology::Network::MakeFigure3());
  ClientRequest request;
  request.requester = RequesterClass::kThirdParty;
  request.click_config =
      "FromNetfront() -> IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};

  int accepted = 0;
  for (int i = 0; i < 750; ++i) {
    request.client_id = "tenant" + std::to_string(i);
    DeployOutcome outcome = ctrl.Deploy(request);
    if (!outcome.accepted) {
      break;
    }
    ++accepted;
  }
  EXPECT_GT(accepted, 200);   // pools really filled up
  EXPECT_LT(accepted, 750);   // and exhaustion was reported
  // All assigned addresses distinct.
  std::set<uint32_t> addrs;
  for (const auto& dep : ctrl.deployments()) {
    EXPECT_TRUE(addrs.insert(dep.addr.value()).second);
  }
}

TEST(Failure, MalformedEverything) {
  Controller ctrl(topology::Network::MakeFigure3());
  ClientRequest request;
  request.client_id = "x";
  const char* bad_configs[] = {
      "",                                     // empty
      "FromNetfront( -> ToNetfront();",       // unbalanced
      "a :: NotAClass(); a -> a;",            // unknown class
      "FromNetfront() -> IPFilter() -> ToNetfront();",  // element arg error
      "x :: Counter(); x -> Discard();",      // no ingress
  };
  for (const char* config : bad_configs) {
    request.click_config = config;
    EXPECT_FALSE(ctrl.Deploy(request).accepted) << config;
  }
  EXPECT_TRUE(ctrl.deployments().empty());
}

TEST(Failure, OrchestratorSurvivesConsolidationRebuildFailure) {
  // A stateless, safe config that the *consolidator* rejects (no ToNetfront
  // cannot happen post-verification, so instead exercise the rebuild path by
  // killing during operation).
  sim::EventQueue clock;
  controller::Orchestrator orchestrator(topology::Network::MakeFigure3(), &clock);
  ClientRequest request;
  request.client_id = "a";
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  auto result = orchestrator.Deploy(request);
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  // Kill twice: the second must fail without corrupting state.
  EXPECT_TRUE(orchestrator.Kill(result.outcome.module_id));
  EXPECT_FALSE(orchestrator.Kill(result.outcome.module_id));
  EXPECT_TRUE(orchestrator.controller().deployments().empty());
}

// --- Engine robustness --------------------------------------------------------------------

TEST(Failure, SymbolicEngineBoundsPathExplosion) {
  // A chain of Tee(2) doubles paths per stage; the engine must truncate
  // rather than exhaust memory.
  // Both Tee outputs feed the next stage, so path count doubles per stage.
  std::string config_text = "src :: FromNetfront();";
  std::string prev = "src";
  for (int i = 0; i < 24; ++i) {
    std::string name = "t" + std::to_string(i);
    config_text += name + " :: Tee(2);" + prev + " -> " + name + ";";
    if (i > 0) {
      config_text += "t" + std::to_string(i - 1) + "[1] -> [0]" + name + ";";
    }
    prev = name;
  }
  config_text += prev + " -> ToNetfront(); " + prev + "[1] -> Discard();";
  std::string error;
  auto config = click::ConfigGraph::Parse(config_text, &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::EngineOptions options;
  options.max_paths = 1000;
  symexec::Engine engine(options);
  auto result = engine.Run(*model, model->FindNode("src"), symexec::kPortInject,
                           symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.steps, 2000u);
}

}  // namespace
}  // namespace innet
