// Tests for the per-tenant SLO health monitor: clause thresholds, hysteresis,
// determinism, and the control-loop consumers (watchdog restart ordering,
// health-ordered rebalance draining).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/controller/orchestrator.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/sim/event_queue.h"
#include "src/topology/network.h"

namespace innet::obs {
namespace {

TEST(Health, DisabledFeedsAreNoOps) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.CountRestart("tenant");
  monitor.ObserveBootLatency("tenant", 1000.0);
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.tenant_count(), 0u);
  EXPECT_EQ(monitor.CurrentState("tenant"), HealthState::kOk);
  EXPECT_EQ(registry.instrument_count(), 0u);
}

TEST(Health, RestartClauseCrossesBothThresholds) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.Enable();

  monitor.CountRestart("flaky");
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("flaky"), HealthState::kDegraded);  // >= 1
  EXPECT_EQ(monitor.Severity("flaky"), 1);

  monitor.CountRestart("flaky");
  monitor.CountRestart("flaky");
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("flaky"), HealthState::kViolated);  // >= 3
  EXPECT_EQ(monitor.Severity("flaky"), 2);

  // A tenant the monitor has never seen reads as ok.
  EXPECT_EQ(monitor.CurrentState("stranger"), HealthState::kOk);
  EXPECT_EQ(monitor.tenant_count(), 1u);
}

TEST(Health, BootLatencyClauseUsesTheP99Quantile) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.Enable();

  // 150 ms lands in the (128, 256] bucket: p99 = 256 ms — past the 100 ms
  // degraded threshold, inside the 500 ms violated one.
  monitor.ObserveBootLatency("slow", 150.0);
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("slow"), HealthState::kDegraded);

  // Pushing the p99 past 500 ms violates.
  for (int i = 0; i < 200; ++i) {
    monitor.ObserveBootLatency("slow", 600.0);
  }
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("slow"), HealthState::kViolated);
}

TEST(Health, DropRateClauseAndHysteresisOnRecovery) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.Enable();

  // 1 drop in 10 offered packets: rate 0.1 > 0.05 -> violated immediately.
  monitor.CountBuffered("bursty", 9);
  monitor.CountDrop("bursty");
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("bursty"), HealthState::kViolated);

  // Dilute the rate below the degraded threshold: the raw state is ok, but
  // the monitor holds the old state for recover_evals - 1 more passes.
  monitor.CountBuffered("bursty", 100000);
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("bursty"), HealthState::kViolated);
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("bursty"), HealthState::kViolated);
  monitor.EvaluateAll();  // third consecutive clean pass: step down
  EXPECT_EQ(monitor.CurrentState("bursty"), HealthState::kOk);

  // Upward transitions stay immediate after a recovery.
  monitor.CountDrop("bursty", 100000);
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("bursty"), HealthState::kViolated);
}

TEST(Health, CustomSloSpecIsHonored) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.Enable();
  SloSpec slo;
  slo.restarts_degraded = 5;
  slo.restarts_violated = 10;
  monitor.set_slo(slo);

  for (int i = 0; i < 4; ++i) {
    monitor.CountRestart("sturdy");
  }
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("sturdy"), HealthState::kOk);  // 4 < 5
  monitor.CountRestart("sturdy");
  monitor.EvaluateAll();
  EXPECT_EQ(monitor.CurrentState("sturdy"), HealthState::kDegraded);
}

TEST(Health, ReportIsSortedAndByteStable) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.Enable();
  monitor.CountRestart("zeta");
  monitor.ObserveBootLatency("alpha", 10.0);
  monitor.EvaluateAll();

  json::Value report = monitor.ToJson();
  const json::Value* tenants = report.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->size(), 2u);
  EXPECT_EQ(tenants->at(0).Find("tenant")->string_value(), "alpha");
  EXPECT_EQ(tenants->at(0).Find("state")->string_value(), "ok");
  EXPECT_EQ(tenants->at(1).Find("tenant")->string_value(), "zeta");
  EXPECT_EQ(tenants->at(1).Find("state")->string_value(), "degraded");
  EXPECT_EQ(report.ToString(2), monitor.ToJson().ToString(2));

  // The state gauge mirrors the evaluation (labels live in the registry).
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("innet_tenant_health_state", {{"tenant", "zeta"}})->value(), 1.0);
}

TEST(Health, TransitionsEmitTraceEvents) {
  MetricsRegistry registry;
  HealthMonitor monitor(&registry);
  monitor.Enable();
  Tracer().Clear();
  Tracer().Enable();

  monitor.CountRestart("watched");
  monitor.EvaluateAll();
  monitor.EvaluateAll();  // unchanged state: no second event

  std::vector<TraceEvent> events = Tracer().events();
  Tracer().Clear();
  Tracer().Enable(false);

  size_t transitions = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kHealthTransition) {
      ++transitions;
      EXPECT_EQ(event.target, "tenant:watched");
      EXPECT_EQ(event.detail, "ok->degraded");
      EXPECT_EQ(event.value, 1);
    }
  }
  EXPECT_EQ(transitions, 1u);
}

// --- Control-loop consumers ----------------------------------------------------
// These use the global monitor/tracer (the watchdog and orchestrator read
// them), so they clean both up before finishing.

controller::ClientRequest MeterRequest(const std::string& client_id) {
  controller::ClientRequest request;
  request.client_id = client_id;
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - 10.10.0.5 - 0 0) "
      "-> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

struct GlobalObsCleanup {
  ~GlobalObsCleanup() {
    Health().Clear();
    Health().Enable(false);
    Tracer().Clear();
    Tracer().Enable(false);
    Tracer().SetTimeSource(nullptr);
  }
};

TEST(HealthControl, WatchdogRestartsTheViolatedTenantsGuestFirst) {
  GlobalObsCleanup cleanup;
  sim::EventQueue clock;
  Health().Clear();
  Health().Enable();
  Tracer().Clear();
  Tracer().Enable();
  Tracer().SetTimeSource([&clock] { return clock.now(); });

  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  auto first = orch.Deploy(MeterRequest("healthy"));
  auto second = orch.Deploy(MeterRequest("victim"));
  ASSERT_TRUE(first.outcome.accepted) << first.outcome.reason;
  ASSERT_TRUE(second.outcome.accepted) << second.outcome.reason;
  ASSERT_EQ(first.outcome.platform, second.outcome.platform);
  ASSERT_LT(first.vm_id, second.vm_id);  // default sweep order would pick it
  platform::InNetPlatform* box = orch.platform(first.outcome.platform);
  box->EnableWatchdog();
  clock.RunUntil(clock.now() + sim::FromSeconds(1));

  // Make "victim" violated without touching its guest: direct SLO feeds.
  Health().CountRestart("victim");
  Health().CountRestart("victim");
  Health().CountRestart("victim");
  Health().EvaluateAll();
  ASSERT_EQ(Health().CurrentState("victim"), HealthState::kViolated);

  // Both guests crash in the same sweep window.
  const sim::TimeNs mark = clock.now();
  ASSERT_TRUE(box->vms().Crash(first.vm_id));
  ASSERT_TRUE(box->vms().Crash(second.vm_id));
  clock.RunUntil(clock.now() + sim::FromSeconds(1));

  std::vector<platform::Vm::VmId> restart_order;
  for (const TraceEvent& event : Tracer().events()) {
    if (event.kind == EventKind::kVmRestart && event.time_ns >= mark) {
      if (event.target == "vm:" + std::to_string(first.vm_id)) {
        restart_order.push_back(first.vm_id);
      } else if (event.target == "vm:" + std::to_string(second.vm_id)) {
        restart_order.push_back(second.vm_id);
      }
    }
  }
  ASSERT_EQ(restart_order.size(), 2u);
  EXPECT_EQ(restart_order[0], second.vm_id);  // violated tenant recovered first
  EXPECT_EQ(restart_order[1], first.vm_id);
}

TEST(HealthControl, RebalanceDrainsTheViolatedTenantFirst) {
  GlobalObsCleanup cleanup;
  sim::EventQueue clock;
  Health().Clear();
  Health().Enable();

  controller::OrchestratorOptions options;
  options.platform_memory_bytes = 32ull << 20;  // 4 ClickOS guests per box
  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);
  // First-fit packs all four stateful tenants onto platform1 -> 100% full.
  std::vector<std::string> module_ids;
  for (int i = 0; i < 4; ++i) {
    auto result = orch.Deploy(MeterRequest("tenant" + std::to_string(i)));
    ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
    ASSERT_EQ(result.outcome.platform, "platform1");
    module_ids.push_back(result.outcome.module_id);
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(1));

  // tenant2 is violated; without health the drain would start at the lowest
  // module id (tenant0's).
  Health().CountRestart("tenant2");
  Health().CountRestart("tenant2");
  Health().CountRestart("tenant2");

  controller::RebalanceReport report = orch.Rebalance(/*drain_above_utilization=*/0.7);
  clock.RunUntil(clock.now() + sim::FromSeconds(2));
  ASSERT_EQ(report.hot_platforms, 1u);
  ASSERT_EQ(report.moves.size(), 2u);
  EXPECT_EQ(report.moves[0].first, module_ids[2]);  // violated drains first
  EXPECT_EQ(report.moves[1].first, module_ids[0]);  // then lowest module id
  EXPECT_EQ(orch.placement_count(), 4u);            // nobody was lost
}

}  // namespace
}  // namespace innet::obs
