// In-band telemetry coverage: the chain hash + digest wire format both sides
// of attestation share, the verify-time digest symexec derives, the
// collector's fold/attest semantics (statuses, violations, truncation
// skip), the graph-level sampling that carries hop stacks on packets, and
// the health/trace fan-out a violation triggers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/click/profiler.h"
#include "src/obs/health.h"
#include "src/obs/int_telemetry.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/symexec/path_digest.h"

namespace innet {
namespace {

using click::Graph;
using click::GraphProfilerConfig;
using obs::HashChain;
using obs::IntCollector;
using obs::IntPathDigest;
using obs::IntPostcard;
using obs::IntPostcardHop;

// A two-element tenant interior with named elements, so the canonical chain
// is exactly {"f", "r"} on both the symbolic and runtime sides.
constexpr const char* kNamedChain =
    "FromNetfront() -> f :: IPFilter(allow udp) -> "
    "r :: IPRewriter(pattern - - 10.0.9.1 - 0 0) -> ToNetfront();";

Packet Udp(uint16_t sport = 1234) {
  return Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                         Ipv4Address::MustParse("10.0.0.2"), sport, 80, 32);
}

// The global collector (like the tracer) is shared across tests in one
// process: every test that enables it must restore the disabled/empty state.
class IntGuard {
 public:
  IntGuard() {
    obs::Int().Clear();
    obs::Int().Enable();
  }
  ~IntGuard() {
    obs::Int().Enable(false);
    obs::Int().Clear();
  }
};

IntPathDigest DigestForChain(const std::vector<std::string>& chain) {
  IntPathDigest digest;
  digest.full_paths.push_back(HashChain(chain));
  std::vector<std::string> prefix;
  digest.prefixes.push_back(HashChain(prefix));  // empty prefix always present
  for (const std::string& element : chain) {
    prefix.push_back(element);
    digest.prefixes.push_back(HashChain(prefix));
  }
  std::sort(digest.full_paths.begin(), digest.full_paths.end());
  std::sort(digest.prefixes.begin(), digest.prefixes.end());
  return digest;
}

// --- Chain hash + digest wire format ---------------------------------------------------

TEST(HashChain, OrderSensitiveAndBoundaryAware) {
  EXPECT_EQ(HashChain({"a", "b"}), HashChain({"a", "b"}));
  EXPECT_NE(HashChain({"a", "b"}), HashChain({"b", "a"}));
  // The ';' separator is part of the hash: {"ab"} must not collide with
  // {"a","b"} or the digest could not tell one hop from two.
  EXPECT_NE(HashChain({"ab"}), HashChain({"a", "b"}));
  EXPECT_NE(HashChain({"a"}), HashChain({}));
}

TEST(IntPathDigest, EncodeDecodeRoundTrip) {
  IntPathDigest digest;
  digest.full_paths = {7, 0xdeadbeefULL, 1};
  digest.prefixes = {0xffffffffffffffffULL, 3};
  digest.truncated = true;
  std::sort(digest.full_paths.begin(), digest.full_paths.end());
  std::sort(digest.prefixes.begin(), digest.prefixes.end());

  IntPathDigest decoded;
  ASSERT_TRUE(IntPathDigest::Decode(digest.Encode(), &decoded));
  EXPECT_EQ(decoded.full_paths, digest.full_paths);
  EXPECT_EQ(decoded.prefixes, digest.prefixes);
  EXPECT_TRUE(decoded.truncated);

  // An empty, non-truncated digest (unverifiable config) round-trips too.
  IntPathDigest empty;
  ASSERT_TRUE(IntPathDigest::Decode(empty.Encode(), &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(IntPathDigest, DecodeRejectsMalformedText) {
  IntPathDigest out;
  for (const char* bad : {
           "",                 // empty journal field (pre-INT deployments)
           "garbage",          // not a digest at all
           "intd2:c:1:2",      // unknown version
           "intd1:x:1:2",      // bad truncation flag
           "intd1:c:1",        // missing prefix set
           "intd1:c:zz:1",     // non-hex hash
           "intd1:c:1,,2:3",   // empty list entry
           "intd1:t",          // truncated mid-header
       }) {
    EXPECT_FALSE(IntPathDigest::Decode(bad, &out)) << bad;
  }
}

// --- Verify-time digest from symbolic execution ----------------------------------------

TEST(PathDigest, SymexecDigestCoversDeliveredAndDroppedChains) {
  IntPathDigest digest = symexec::ComputePathDigestFromText(kNamedChain);
  ASSERT_FALSE(digest.empty());
  EXPECT_FALSE(digest.truncated);

  // The one delivered path is filter -> rewriter (endpoints excluded).
  EXPECT_TRUE(digest.MatchesFull(HashChain({"f", "r"})));
  EXPECT_FALSE(digest.MatchesFull(HashChain({"f"})));

  // Drop points: before any element (empty prefix), at the filter, or after
  // the rewriter. Never a chain that starts mid-path.
  EXPECT_TRUE(digest.MatchesPrefix(HashChain({})));
  EXPECT_TRUE(digest.MatchesPrefix(HashChain({"f"})));
  EXPECT_TRUE(digest.MatchesPrefix(HashChain({"f", "r"})));
  EXPECT_FALSE(digest.MatchesPrefix(HashChain({"r"})));
}

TEST(PathDigest, UnparseableConfigYieldsEmptyDigest) {
  EXPECT_TRUE(symexec::ComputePathDigestFromText("this is not click").empty());
}

// --- Collector fold + attestation semantics --------------------------------------------

IntPostcard MakePostcard(const std::string& tenant, std::vector<std::string> chain,
                         bool egress, uint64_t path_ns = 100) {
  IntPostcard postcard;
  postcard.tenant = tenant;
  postcard.vm = "vm:1";
  postcard.chain = std::move(chain);
  for (const std::string& element : postcard.chain) {
    IntPostcardHop hop;
    hop.element = element;
    hop.hop_ns = 10;
    postcard.hops.push_back(hop);
  }
  postcard.path_ns = path_ns;
  postcard.egress = egress;
  return postcard;
}

TEST(IntCollector, AttestsEgressAgainstFullPathsAndDropsAgainstPrefixes) {
  obs::MetricsRegistry registry;
  IntCollector collector(&registry);
  collector.Enable();
  collector.SetTenantDigest("t", DigestForChain({"a", "b"}));

  collector.Fold(MakePostcard("t", {"a", "b"}, /*egress=*/true));   // full match
  collector.Fold(MakePostcard("t", {"a"}, /*egress=*/false));       // drop at a: prefix
  collector.Fold(MakePostcard("t", {}, /*egress=*/false));          // drop pre-chain
  EXPECT_EQ(collector.postcards(), 3u);
  EXPECT_EQ(collector.violations(), 0u);

  // A delivered packet that only walked a prefix is a violation — and so is
  // a drop on a chain no verified path starts with.
  collector.Fold(MakePostcard("t", {"a"}, /*egress=*/true));
  collector.Fold(MakePostcard("t", {"b"}, /*egress=*/false));
  EXPECT_EQ(collector.violations(), 2u);
  EXPECT_EQ(collector.TenantViolations("t"), 2u);
  EXPECT_EQ(registry
                .GetCounter("innet_path_conformance_violations_total", {{"tenant", "t"}})
                ->value(),
            2.0);
  // Hop latency folded per element regardless of verdict.
  EXPECT_EQ(registry.GetCounter("innet_int_hop_ns_total", {{"element", "a"}})->value(),
            30.0);
}

TEST(IntCollector, StatusesSeparateUnattributedUnattestedAndTruncated) {
  obs::MetricsRegistry registry;
  IntCollector collector(&registry);
  collector.Enable();
  collector.SetTenantDigest("t", DigestForChain({"a"}));

  // No tenant: counted, never attested.
  collector.Fold(MakePostcard("", {"x"}, /*egress=*/true));
  // Tenant without a registered digest: observed but unattested.
  collector.Fold(MakePostcard("other", {"x"}, /*egress=*/true));
  // Truncated hop stack: a mismatch proves nothing, so no violation.
  IntPostcard truncated = MakePostcard("t", {"x"}, /*egress=*/true);
  truncated.truncated_hops = 2;
  collector.Fold(truncated);

  EXPECT_EQ(collector.postcards(), 3u);
  EXPECT_EQ(collector.violations(), 0u);
  EXPECT_EQ(registry.GetCounter("innet_int_postcards_total", {{"status", "unattributed"}})
                ->value(),
            1.0);
  EXPECT_EQ(registry.GetCounter("innet_int_postcards_total", {{"status", "unattested"}})
                ->value(),
            1.0);
  EXPECT_EQ(registry.GetCounter("innet_int_hops_truncated_total", {})->value(), 2.0);

  // A digest marked truncated at verify time also suppresses attestation.
  IntPathDigest partial = DigestForChain({"a"});
  partial.truncated = true;
  collector.SetTenantDigest("t", partial);
  collector.Fold(MakePostcard("t", {"zz"}, /*egress=*/true));
  EXPECT_EQ(collector.violations(), 0u);
}

TEST(IntCollector, DisabledCollectorIgnoresPostcards) {
  obs::MetricsRegistry registry;
  IntCollector collector(&registry);
  collector.SetTenantDigest("t", DigestForChain({"a"}));
  collector.Fold(MakePostcard("t", {"zz"}, /*egress=*/true));
  EXPECT_EQ(collector.postcards(), 0u);
  EXPECT_EQ(collector.violations(), 0u);
}

TEST(IntCollector, ViolationRaisesTraceEventAndHealthClause) {
  obs::MetricsRegistry registry;
  IntCollector collector(&registry);
  collector.Enable();
  collector.SetTenantDigest("t", DigestForChain({"a"}));

  obs::Tracer().Clear();
  obs::Tracer().Enable();
  obs::Health().Clear();
  obs::Health().Enable();

  collector.Fold(MakePostcard("t", {"zz"}, /*egress=*/true, /*path_ns=*/777));

  bool saw_event = false;
  for (const obs::TraceEvent& event : obs::Tracer().events()) {
    if (event.kind == obs::EventKind::kPathViolation) {
      saw_event = true;
      EXPECT_EQ(event.target, "tenant:t");
      EXPECT_EQ(event.detail, "egress:zz");
      EXPECT_EQ(event.value, 777);
    }
  }
  EXPECT_TRUE(saw_event);

  // One violation crosses the default degraded threshold; four violate it.
  obs::Health().EvaluateAll();
  EXPECT_EQ(obs::Health().CurrentState("t"), obs::HealthState::kDegraded);
  for (int i = 0; i < 3; ++i) {
    collector.Fold(MakePostcard("t", {"zz"}, /*egress=*/true));
  }
  obs::Health().EvaluateAll();
  EXPECT_EQ(obs::Health().CurrentState("t"), obs::HealthState::kViolated);

  obs::Tracer().Enable(false);
  obs::Tracer().Clear();
  obs::Health().Enable(false);
  obs::Health().Clear();
}

TEST(IntCollector, ToJsonCarriesHeatmapAndAttestationRows) {
  obs::MetricsRegistry registry;
  IntCollector collector(&registry);
  collector.Enable();
  collector.SetTenantDigest("t", DigestForChain({"a", "b"}));
  collector.Fold(MakePostcard("t", {"a", "b"}, /*egress=*/true, 100));
  collector.Fold(MakePostcard("t", {"a", "b"}, /*egress=*/true, 300));

  obs::json::Value dump = collector.ToJson();
  EXPECT_EQ(dump.Find("postcards")->int_number(), 2);
  const obs::json::Value* tenants = dump.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->size(), 1u);
  const obs::json::Value& tenant = tenants->at(0);
  EXPECT_EQ(tenant.Find("tenant")->string_value(), "t");
  EXPECT_TRUE(tenant.Find("attested")->bool_value());
  const obs::json::Value* paths = tenant.Find("paths");
  ASSERT_NE(paths, nullptr);
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ(paths->at(0).Find("chain")->string_value(), "a;b");
  EXPECT_EQ(paths->at(0).Find("count")->int_number(), 2);
  EXPECT_EQ(paths->at(0).Find("avg_ns")->int_number(), 200);
  EXPECT_EQ(paths->at(0).Find("min_ns")->int_number(), 100);
  EXPECT_EQ(paths->at(0).Find("max_ns")->int_number(), 300);
  EXPECT_TRUE(paths->at(0).Find("delivered")->bool_value());
}

// --- Graph-level in-band collection ----------------------------------------------------

TEST(GraphInt, SampledWalksCarryHopStacksThatAttestClean) {
  IntGuard guard;
  obs::Int().SetTenantDigest("tenant", symexec::ComputePathDigestFromText(kNamedChain));

  std::string error;
  auto graph = Graph::FromText(kNamedChain, &error);
  ASSERT_NE(graph, nullptr) << error;
  GraphProfilerConfig config;
  config.int_sample_n = 1;  // tag every walk
  config.int_tenant = [](int) { return std::string("tenant"); };
  graph->EnableProfiling(config);

  for (int i = 0; i < 4; ++i) {
    Packet p = Udp();
    graph->InjectAtSource(p);
  }
  // A TCP packet fails "allow udp": dropped at the filter, which is a
  // verified path prefix — conformant.
  Packet denied = Packet::MakeTcp(Ipv4Address::MustParse("10.0.0.1"),
                                  Ipv4Address::MustParse("10.0.0.2"), 1, 2, 0, 8);
  graph->InjectAtSource(denied);

  EXPECT_EQ(graph->profiler()->int_walks(), 5u);
  EXPECT_EQ(obs::Int().postcards(), 5u);
  EXPECT_EQ(obs::Int().violations(), 0u);

  obs::json::Value dump = obs::Int().ToJson();
  const obs::json::Value* tenants = dump.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->size(), 1u);
  const obs::json::Value* paths = tenants->at(0).Find("paths");
  ASSERT_NE(paths, nullptr);
  ASSERT_EQ(paths->size(), 2u);  // sorted: delivered "f;r" and the drop "f"
  EXPECT_EQ(paths->at(0).Find("chain")->string_value(), "f");
  EXPECT_FALSE(paths->at(0).Find("delivered")->bool_value());
  EXPECT_EQ(paths->at(1).Find("chain")->string_value(), "f;r");
  EXPECT_TRUE(paths->at(1).Find("delivered")->bool_value());
  EXPECT_GT(paths->at(1).Find("avg_ns")->int_number(), 0);
}

TEST(GraphInt, SamplingIsOneInNAndDeterministic) {
  IntGuard guard;
  std::string error;
  auto graph = Graph::FromText(kNamedChain, &error);
  ASSERT_NE(graph, nullptr) << error;
  GraphProfilerConfig config;
  config.int_sample_n = 4;
  config.seed = 7;
  config.int_tenant = [](int) { return std::string("tenant"); };
  graph->EnableProfiling(config);
  for (int i = 0; i < 16; ++i) {
    Packet p = Udp();
    graph->InjectAtSource(p);
  }
  // walks ≡ seed (mod 4): ordinals 3, 7, 11, 15 — same contract as the
  // walk-trace sampler, but independent state on the packet itself.
  EXPECT_EQ(graph->profiler()->int_walks(), 4u);
  EXPECT_EQ(obs::Int().postcards(), 4u);
}

TEST(GraphInt, ParkedPacketCompletesPostcardAfterTimedRelease) {
  IntGuard guard;
  sim::EventQueue clock;
  constexpr const char* kTimed =
      "FromNetfront() -> f :: IPFilter(allow udp) -> "
      "b :: TimedUnqueue(0.1,10) -> ToNetfront();";
  obs::Int().SetTenantDigest("tenant", symexec::ComputePathDigestFromText(kTimed));

  std::string error;
  auto graph = Graph::FromText(kTimed, &error, &clock);
  ASSERT_NE(graph, nullptr) << error;
  GraphProfilerConfig config;
  config.int_sample_n = 1;
  config.int_tenant = [](int) { return std::string("tenant"); };
  graph->EnableProfiling(config);

  Packet p = Udp();
  graph->InjectAtSource(p);
  // The batcher parked the packet: the walk ended, but the in-band stack
  // must stay open — no drop postcard for a packet still in flight.
  EXPECT_EQ(obs::Int().postcards(), 0u);

  clock.RunUntil(sim::FromSeconds(1));  // timer fires, packet egresses
  ASSERT_EQ(obs::Int().postcards(), 1u);
  EXPECT_EQ(obs::Int().violations(), 0u);
  obs::json::Value dump = obs::Int().ToJson();
  const obs::json::Value* paths = dump.Find("tenants")->at(0).Find("paths");
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ(paths->at(0).Find("chain")->string_value(), "f;b");
  EXPECT_TRUE(paths->at(0).Find("delivered")->bool_value());
  // Path latency includes the park time (sim clock, not just element cost).
  EXPECT_GE(static_cast<uint64_t>(paths->at(0).Find("max_ns")->int_number()),
            sim::FromMillis(50));
}

TEST(GraphInt, LiveRewireIsFlaggedAsViolation) {
  IntGuard guard;
  obs::Int().SetTenantDigest("tenant", symexec::ComputePathDigestFromText(kNamedChain));

  std::string error;
  auto graph = Graph::FromText(kNamedChain, &error);
  ASSERT_NE(graph, nullptr) << error;
  GraphProfilerConfig config;
  config.int_sample_n = 1;
  config.int_tenant = [](int) { return std::string("tenant"); };
  graph->EnableProfiling(config);

  Packet clean = Udp();
  graph->InjectAtSource(clean);
  EXPECT_EQ(obs::Int().violations(), 0u);

  // Rewire the filter straight to the sink: delivered packets now skip the
  // rewriter, a chain the digest has no full path for.
  click::Element* filter = graph->Find("f");
  click::Element* sink = graph->FindByClass("ToNetfront");
  ASSERT_NE(filter, nullptr);
  ASSERT_NE(sink, nullptr);
  filter->ConnectOutput(0, sink, 0);
  Packet diverted = Udp();
  graph->InjectAtSource(diverted);
  EXPECT_EQ(obs::Int().violations(), 1u);
  EXPECT_EQ(obs::Int().TenantViolations("tenant"), 1u);
}

}  // namespace
}  // namespace innet
