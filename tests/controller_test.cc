#include <gtest/gtest.h>

#include "src/controller/controller.h"
#include "src/controller/orchestrator.h"
#include "src/controller/security.h"
#include "src/controller/stock_modules.h"
#include "src/topology/network.h"

namespace innet::controller {
namespace {

using topology::Network;

// --- Security checker: the Table 1 matrix ----------------------------------------------

class SecurityCheck : public ::testing::Test {
 protected:
  // Runs the checker on `config_text` for `requester`; whitelist contains the
  // client's registered address (10.10.0.5) plus any extras.
  Verdict Run(const std::string& config_text, RequesterClass requester,
              std::vector<Ipv4Address> extra_whitelist = {}) {
    std::string error;
    auto config = click::ConfigGraph::Parse(config_text, &error);
    EXPECT_TRUE(config.has_value()) << error;
    SecurityOptions options;
    options.requester = requester;
    options.module_addr = Ipv4Address::MustParse("172.16.3.10");
    options.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
    for (Ipv4Address addr : extra_whitelist) {
      options.whitelist.push_back(addr);
    }
    options.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
    SecurityReport report = CheckModuleSecurity(*config, options, &error);
    return report.verdict;
  }
};

// Table 1 row: Firewall — safe for everyone.
TEST_F(SecurityCheck, FirewallRow) {
  const std::string config =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: Flow meter — safe (pass-through measurement to own address).
TEST_F(SecurityCheck, FlowMeterRow) {
  const std::string config =
      "FromNetfront() -> FlowMeter() ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: Rate limiter — safe.
TEST_F(SecurityCheck, RateLimiterRow) {
  const std::string config =
      "FromNetfront() -> RateLimiter(8000000) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kSafe);
}

// Table 1 row: IP Router — rejected for tenants (forwards by attacker-set
// destination), fine for the operator.
TEST_F(SecurityCheck, IpRouterRow) {
  const std::string config =
      "src :: FromNetfront(); rt :: LinearIPLookup(0.0.0.0/1 0, 128.0.0.0/1 1);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> rt; rt[0] -> a; rt[1] -> b;";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: DPI — rejected for tenants (transit inspection).
TEST_F(SecurityCheck, DpiRow) {
  const std::string config =
      "src :: FromNetfront(); dpi :: ContentMatch(EVIL);"
      "pass :: ToNetfront(); alert :: Discard();"
      "src -> dpi; dpi[0] -> pass; dpi[1] -> alert;";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: NAT — rejected for tenants.
TEST_F(SecurityCheck, NatRow) {
  const std::string config =
      "outb :: FromNetfront(); inb :: FromNetfront();"
      "nat :: NatRewriter(PUBLIC 172.16.3.10);"
      "wan :: ToNetfront(); lan :: ToNetfront();"
      "outb -> nat; nat[0] -> wan; inb -> [1]nat; nat[1] -> lan;";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: Transparent proxy — rejected for tenants.
TEST_F(SecurityCheck, TransparentProxyRow) {
  const std::string config = "FromNetfront() -> TransparentProxy() -> ToNetfront();";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: Tunnel — sandbox for third parties (decapsulated destination
// unknown at install time), clean for clients.
TEST_F(SecurityCheck, TunnelRow) {
  const std::string config = StockTunnel(Ipv4Address::MustParse("7.7.7.7"),
                                         Ipv4Prefix::MustParse("10.10.0.0/24"));
  std::string substituted =
      SubstituteSelf(config, Ipv4Address::MustParse("172.16.3.10"));
  EXPECT_EQ(Run(substituted, RequesterClass::kThirdParty, {Ipv4Address::MustParse("7.7.7.7")}),
            Verdict::kNeedsSandbox);
  EXPECT_EQ(Run(substituted, RequesterClass::kClient, {Ipv4Address::MustParse("7.7.7.7")}),
            Verdict::kSafe);
  EXPECT_EQ(Run(substituted, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: Multicast — safe when every replica destination is authorized.
TEST_F(SecurityCheck, MulticastRow) {
  const std::string config =
      "src :: FromNetfront(); t :: Tee(2);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> t; t[0] -> SetIPDst(10.10.0.5) -> a; t[1] -> SetIPDst(10.10.0.6) -> b;";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty, {Ipv4Address::MustParse("10.10.0.6")}),
            Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kSafe);
}

// Multicast to an UNREGISTERED replica is exactly the DDoS vector default-off
// prevents: rejected for third parties (but clients may send anywhere).
TEST_F(SecurityCheck, MulticastToUnregisteredReplica) {
  const std::string config =
      "src :: FromNetfront(); t :: Tee(2);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> t; t[0] -> SetIPDst(10.10.0.5) -> a; t[1] -> SetIPDst(9.9.9.9) -> b;";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kSafe);
}

// Table 1 row: DNS server (stock) — safe: responds to the requester.
TEST_F(SecurityCheck, DnsServerRow) {
  std::string config =
      SubstituteSelf(StockDnsServer(), Ipv4Address::MustParse("172.16.3.10"));
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Table 1 row: Reverse proxy (stock) — safe: replies to requester, fetches
// from the whitelisted origin.
TEST_F(SecurityCheck, ReverseProxyRow) {
  std::string config = SubstituteSelf(StockReverseProxy(Ipv4Address::MustParse("5.5.5.5")),
                                      Ipv4Address::MustParse("172.16.3.10"));
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty, {Ipv4Address::MustParse("5.5.5.5")}),
            Verdict::kSafe);
  EXPECT_EQ(Run(config, RequesterClass::kClient, {Ipv4Address::MustParse("5.5.5.5")}),
            Verdict::kSafe);
}

// Table 1 row: x86 VM — sandbox for tenants (opaque), safe for the operator.
TEST_F(SecurityCheck, X86VmRow) {
  std::string config = StockX86Vm();
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kNeedsSandbox);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kNeedsSandbox);
  EXPECT_EQ(Run(config, RequesterClass::kOperator), Verdict::kSafe);
}

// Spoofing a fixed source address is always rejected.
TEST_F(SecurityCheck, SpoofedSourceRejected) {
  const std::string config =
      "FromNetfront() -> SetIPSrc(6.6.6.6) -> SetIPDst(10.10.0.5) -> ToNetfront();";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kRejected);
  EXPECT_EQ(Run(config, RequesterClass::kClient), Verdict::kRejected);
}

// Sourcing as the module's own address is fine.
TEST_F(SecurityCheck, ModuleAddressSourceAccepted) {
  const std::string config =
      "FromNetfront() -> SetIPSrc(172.16.3.10) -> SetIPDst(10.10.0.5) -> ToNetfront();";
  EXPECT_EQ(Run(config, RequesterClass::kThirdParty), Verdict::kSafe);
}

// A module that drops everything is trivially safe.
TEST_F(SecurityCheck, BlackholeIsSafe) {
  EXPECT_EQ(Run("FromNetfront() -> Discard();", RequesterClass::kThirdParty), Verdict::kSafe);
}

TEST_F(SecurityCheck, NoIngressRejected) {
  EXPECT_EQ(Run("x :: Counter(); x -> ToNetfront();", RequesterClass::kThirdParty),
            Verdict::kRejected);
}

// --- Controller deployment (the Figure 4 request on the Figure 3 topology) --------------

class ControllerDeploy : public ::testing::Test {
 protected:
  ControllerDeploy() : controller_(Network::MakeFigure3()) {}

  ClientRequest BatcherRequest() {
    ClientRequest request;
    request.client_id = "mobile1";
    request.requester = RequesterClass::kClient;
    request.click_config =
        "FromNetfront() ->"
        "IPFilter(allow udp dst port 1500) ->"
        "IPRewriter(pattern - - 10.10.0.5 - 0 0)"
        "-> TimedUnqueue(120,100)"
        "-> dst :: ToNetfront();";
    request.requirements =
        "reach from internet udp -> client dst port 1500 "
        "const proto && dst port && payload";
    request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
    request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
    return request;
  }

  Controller controller_;
};

TEST_F(ControllerDeploy, BatcherLandsOnPlatform3) {
  // Platforms 1 and 2 are not reachable from the Internet (NAT path / HTTP
  // policy path), so the push-notification batcher must land on platform 3 —
  // the placement the paper's unifying example walks through (§4.5).
  DeployOutcome outcome = controller_.Deploy(BatcherRequest());
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
  EXPECT_EQ(outcome.platform, "platform3");
  EXPECT_FALSE(outcome.sandboxed);
  EXPECT_TRUE(outcome.module_addr.IsUnspecified() == false);
  EXPECT_EQ(controller_.deployments().size(), 1u);
}

TEST_F(ControllerDeploy, ModuleElementWaypointRequirement) {
  ClientRequest request = BatcherRequest();
  request.requirements =
      "reach from internet udp -> batcher:dst:0 dst 10.10.0.5 -> client dst port 1500";
  DeployOutcome outcome = controller_.Deploy(request);
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
}

TEST_F(ControllerDeploy, ImpossibleRequirementRejected) {
  ClientRequest request = BatcherRequest();
  // ICMP can never reach the clients (firewall) and the module only passes UDP.
  request.requirements = "reach from internet icmp -> client";
  DeployOutcome outcome = controller_.Deploy(request);
  EXPECT_FALSE(outcome.accepted);
}

TEST_F(ControllerDeploy, UnsafeModuleRejected) {
  ClientRequest request = BatcherRequest();
  request.requester = RequesterClass::kThirdParty;
  request.click_config = "FromNetfront() -> TransparentProxy() -> ToNetfront();";
  request.requirements = "";
  DeployOutcome outcome = controller_.Deploy(request);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_NE(outcome.reason.find("security"), std::string::npos);
}

TEST_F(ControllerDeploy, SandboxedModuleDeploysWithFlag) {
  ClientRequest request = BatcherRequest();
  request.click_config = StockX86Vm();
  request.requirements = "";
  DeployOutcome outcome = controller_.Deploy(request);
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
  EXPECT_TRUE(outcome.sandboxed);
}

TEST_F(ControllerDeploy, OperatorPolicyBlocksViolatingPlacement) {
  // An operator policy that can never hold with this module rejects the
  // deployment outright.
  ASSERT_TRUE(controller_.AddOperatorPolicy(
      "reach from internet tcp src port 80 -> http_optimizer -> client"));
  DeployOutcome outcome = controller_.Deploy(BatcherRequest());
  // The policy holds independently of the module, so deployment succeeds...
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
}

TEST_F(ControllerDeploy, KillRemovesDeployment) {
  DeployOutcome outcome = controller_.Deploy(BatcherRequest());
  ASSERT_TRUE(outcome.accepted);
  EXPECT_TRUE(controller_.Kill(outcome.module_id));
  EXPECT_FALSE(controller_.Kill(outcome.module_id));
  EXPECT_TRUE(controller_.deployments().empty());
}

TEST_F(ControllerDeploy, SecondDeploymentGetsDistinctAddress) {
  DeployOutcome first = controller_.Deploy(BatcherRequest());
  ClientRequest second_request = BatcherRequest();
  second_request.client_id = "mobile2";
  DeployOutcome second = controller_.Deploy(second_request);
  ASSERT_TRUE(first.accepted) << first.reason;
  ASSERT_TRUE(second.accepted) << second.reason;
  EXPECT_NE(first.module_addr, second.module_addr);
  EXPECT_NE(first.module_id, second.module_id);
}

TEST_F(ControllerDeploy, BadConfigSyntaxRejected) {
  ClientRequest request = BatcherRequest();
  request.click_config = "FromNetfront( -> ToNetfront();";
  DeployOutcome outcome = controller_.Deploy(request);
  EXPECT_FALSE(outcome.accepted);
}

TEST_F(ControllerDeploy, BadRequirementSyntaxRejected) {
  ClientRequest request = BatcherRequest();
  request.requirements = "reach to the moon";
  DeployOutcome outcome = controller_.Deploy(request);
  EXPECT_FALSE(outcome.accepted);
}

TEST_F(ControllerDeploy, TimingBreakdownPopulated) {
  DeployOutcome outcome = controller_.Deploy(BatcherRequest());
  ASSERT_TRUE(outcome.accepted);
  EXPECT_GT(outcome.model_build_ms + outcome.check_ms, 0.0);
  EXPECT_GT(outcome.engine_steps, 0u);
}

// Geolocation placement on a multi-PoP operator: the module serving a PoP's
// clients lands on that PoP's platform (§8's CDN/DNS story).
TEST(MultiPopPlacement, ModuleLandsNearItsClients) {
  Controller controller(topology::Network::MakeMultiPop(4));
  for (int pop : {2, 0, 3}) {
    ClientRequest request;
    request.client_id = "dns-pop" + std::to_string(pop);
    request.requester = RequesterClass::kThirdParty;
    request.click_config = StockDnsServer();
    std::string client_net = "10." + std::to_string(pop + 1) + ".0.0/16";
    request.requirements =
        "reach from " + client_net + " udp dst port 53 -> module:server -> client";
    DeployOutcome outcome = controller.Deploy(request);
    ASSERT_TRUE(outcome.accepted) << outcome.reason;
    EXPECT_EQ(outcome.platform, "platform" + std::to_string(pop));
  }
}

TEST(MultiPopPlacement, HopDistanceMetric) {
  topology::Network net = topology::Network::MakeMultiPop(3);
  EXPECT_EQ(net.HopDistance("clients1", "platform1"), 2);  // via access1
  EXPECT_EQ(net.HopDistance("clients1", "platform2"), 4);  // via access1, core, access2
  EXPECT_EQ(net.HopDistance("internet", "platform0"), 3);
  EXPECT_EQ(net.HopDistance("core", "core"), 0);
  EXPECT_EQ(net.HopDistance("core", "nonexistent"), -1);
}

// DNS stock module: reachable from the Internet on UDP 53.
TEST_F(ControllerDeploy, StockDnsDeploysAndIsReachable) {
  ClientRequest request;
  request.client_id = "cdn";
  request.requester = RequesterClass::kThirdParty;
  request.click_config = StockDnsServer();
  request.requirements = "reach from internet udp dst port 53 -> module:server -> internet";
  DeployOutcome outcome = controller_.Deploy(request);
  ASSERT_TRUE(outcome.accepted) << outcome.reason;
  EXPECT_EQ(outcome.platform, "platform3");
}

// --- Orchestrator reject-path bookkeeping ----------------------------------------------

// Rejected deployments must leave no trace: no placement entry, no committed
// deployment, no admission usage. The pinned request bypasses the scheduler's
// headroom filter, so the failure happens late — at shared-VM rebuild, after
// verification already passed — the worst case for stale bookkeeping.
TEST(OrchestratorBookkeeping, FailedInstallLeavesNoStaleState) {
  sim::EventQueue clock;
  OrchestratorOptions options;
  // Room for exactly one 8 MB ClickOS guest: the second tenant's shared-VM
  // rebuild (which transiently needs a second guest) must fail.
  options.platform_memory_bytes = 12ull << 20;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);

  ClientRequest request;
  request.client_id = "web1";
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  request.pinned_platform = "platform1";

  auto first = orch.Deploy(request);
  ASSERT_TRUE(first.outcome.accepted) << first.outcome.reason;
  ASSERT_TRUE(first.consolidated);

  ClientRequest second_request = request;
  second_request.client_id = "web2";
  auto second = orch.Deploy(second_request);
  EXPECT_FALSE(second.outcome.accepted);
  EXPECT_NE(second.outcome.reason.find("consolidation failed"), std::string::npos);
  // No stale placement, deployment record, shared-VM tenant, or quota usage.
  EXPECT_EQ(orch.placement_count(), 1u);
  EXPECT_FALSE(orch.HasPlacement(second.outcome.module_id));
  EXPECT_EQ(orch.controller().deployments().size(), 1u);
  EXPECT_EQ(orch.ConsolidatedTenantCount("platform1"), 1u);
  EXPECT_EQ(orch.engine().admission().UsageFor("web2").modules, 0u);
  // The surviving tenant is untouched.
  EXPECT_EQ(orch.platform("platform1")->vms().vm_count(), 1u);
}

// Headroom rejection happens before verification: nothing is committed.
TEST(OrchestratorBookkeeping, NoHeadroomRejectsBeforeVerification) {
  sim::EventQueue clock;
  OrchestratorOptions options;
  options.platform_memory_bytes = 4ull << 20;  // below one ClickOS guest
  Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);

  ClientRequest request;
  request.client_id = "web1";
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};

  auto result = orch.Deploy(request);
  EXPECT_FALSE(result.outcome.accepted);
  EXPECT_NE(result.outcome.reason.find("no platform has headroom"), std::string::npos);
  EXPECT_EQ(result.outcome.engine_steps, 0u);  // the verifier never ran
  EXPECT_TRUE(orch.controller().deployments().empty());
  EXPECT_EQ(orch.placement_count(), 0u);
}

// Kill of a module id that never placed (or already died) is a clean no-op.
TEST(OrchestratorBookkeeping, KillOfNeverPlacedModuleIsCleanNoOp) {
  sim::EventQueue clock;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  EXPECT_FALSE(orch.Kill("module-never-existed"));
  EXPECT_FALSE(orch.Kill(""));
  EXPECT_EQ(orch.placement_count(), 0u);
  for (const char* name : {"platform1", "platform2", "platform3"}) {
    EXPECT_EQ(orch.platform(name)->vms().vm_count(), 0u) << name;
  }
  // Double-kill: the second call finds nothing and says so.
  ClientRequest request;
  request.client_id = "cdn";
  request.requester = RequesterClass::kThirdParty;
  request.click_config = StockDnsServer();
  auto deployed = orch.Deploy(request);
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  EXPECT_TRUE(orch.Kill(deployed.outcome.module_id));
  EXPECT_FALSE(orch.Kill(deployed.outcome.module_id));
  EXPECT_EQ(orch.placement_count(), 0u);
}

}  // namespace
}  // namespace innet::controller
