// Watchdog + fault-injection coverage: crash detection, backoff-restart,
// bounded buffering across the outage, give-up/retire, and determinism of
// the whole recovery timeline from the injector seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/platform/platform.h"
#include "src/platform/watchdog.h"
#include "src/sim/fault_injector.h"

namespace innet {
namespace {

using platform::InNetPlatform;
using platform::Vm;
using platform::VmCostModel;
using platform::VmKind;
using platform::VmState;
using platform::Watchdog;
using platform::WatchdogConfig;

constexpr const char* kEchoConfig = "FromNetfront() -> ToNetfront();";

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         32);
}

TEST(Watchdog, RestartsCrashedVmAndFlushesBufferedTraffic) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  platform.EnableWatchdog();
  std::string error;
  Ipv4Address addr = Ipv4Address::MustParse("172.16.3.10");
  Vm::VmId id = platform.Install(addr, kEchoConfig, &error);
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));
  ASSERT_EQ(platform.vms().Find(id)->state(), VmState::kRunning);

  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  ASSERT_TRUE(platform.vms().Crash(id));
  EXPECT_EQ(platform.vms().memory_used(), 0u);  // crash released the guest's RAM

  // Traffic during the outage is buffered, not lost.
  for (uint16_t i = 0; i < 3; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(7000 + i), 80);
    platform.HandlePacket(p);
  }
  EXPECT_EQ(egressed, 0);

  clock.RunUntil(sim::FromSeconds(3));
  Vm* vm = platform.vms().Find(id);
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->state(), VmState::kRunning);  // same id, restarted in place
  EXPECT_EQ(vm->restart_count(), 1u);
  EXPECT_EQ(egressed, 3);  // buffered packets flushed through the new graph

  auto stats = platform.watchdog()->stats();
  EXPECT_EQ(stats.crashes_observed, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.restart_failures, 0u);
  EXPECT_EQ(stats.gave_up, 0u);

  // stats() is a thin wrapper over the registry: the per-instance counters
  // hold the authoritative values.
  obs::Labels instance = {{"instance", platform.watchdog()->instance_label()}};
  EXPECT_EQ(obs::Registry().GetCounter("innet_watchdog_restarts_total", instance)->value(), 1u);
  EXPECT_EQ(
      obs::Registry().GetCounter("innet_watchdog_crashes_observed_total", instance)->value(),
      1u);

  // The restarted guest keeps processing fresh traffic.
  Packet fresh = Udp("9.9.9.9", "172.16.3.10", 7100, 80);
  platform.HandlePacket(fresh);
  EXPECT_EQ(egressed, 4);
}

// Lifecycle edges the migration path leans on, pinned here so a change in
// their semantics shows up as an explicit test failure, not a scheduler bug.
TEST(Watchdog, ResumeOnCrashedVmIsRefused) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  Vm::VmId id = platform.Install(Ipv4Address::MustParse("172.16.3.10"), kEchoConfig, &error);
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));
  ASSERT_TRUE(platform.vms().Crash(id));
  // A crashed guest lost its graph; only Restart (full reboot) revives it.
  EXPECT_FALSE(platform.vms().Resume(id));
  EXPECT_EQ(platform.vms().Find(id)->state(), VmState::kCrashed);
}

TEST(Watchdog, SuspendDuringBootIsRefused) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  std::string error;
  Vm::VmId id = platform.Install(Ipv4Address::MustParse("172.16.3.10"), kEchoConfig, &error);
  ASSERT_NE(id, 0u) << error;
  // Still booting: there is no quiesced state to save yet.
  ASSERT_EQ(platform.vms().Find(id)->state(), VmState::kBooting);
  EXPECT_FALSE(platform.vms().Suspend(id));
  clock.RunUntil(sim::FromSeconds(1));
  EXPECT_EQ(platform.vms().Find(id)->state(), VmState::kRunning);
  EXPECT_TRUE(platform.vms().Suspend(id));
}

TEST(Watchdog, SuspendedGuestIsInvisibleToTheWatchdog) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  platform.EnableWatchdog();
  std::string error;
  Ipv4Address addr = Ipv4Address::MustParse("172.16.3.10");
  Vm::VmId id = platform.Install(addr, kEchoConfig, &error);
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));
  ASSERT_TRUE(platform.vms().Suspend(id));
  clock.RunUntil(sim::FromSeconds(2));
  ASSERT_EQ(platform.vms().Find(id)->state(), VmState::kSuspended);

  // A suspended-to-disk guest holds no RAM: it cannot crash, and many sweep
  // periods later the watchdog has still not touched it.
  EXPECT_FALSE(platform.vms().Crash(id));
  clock.RunUntil(sim::FromSeconds(30));
  EXPECT_EQ(platform.vms().Find(id)->state(), VmState::kSuspended);
  EXPECT_EQ(platform.watchdog()->stats().crashes_observed, 0u);
  EXPECT_EQ(platform.watchdog()->stats().restarts, 0u);

  // Traffic still resumes it transparently (the §5 path, unaffected by the
  // watchdog running alongside).
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  Packet p = Udp("9.9.9.9", "172.16.3.10", 7000, 80);
  platform.HandlePacket(p);
  clock.RunUntil(sim::FromSeconds(31));
  EXPECT_EQ(platform.vms().Find(id)->state(), VmState::kRunning);
  EXPECT_EQ(egressed, 1);
  EXPECT_EQ(platform.resumes_on_traffic(), 1u);
}

TEST(Watchdog, BackoffScheduleIsExponentialAndCapped) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  WatchdogConfig config;
  config.backoff_base = sim::FromMillis(10);
  config.backoff_factor = 2.0;
  config.backoff_cap = sim::FromMillis(70);
  Watchdog* watchdog = platform.EnableWatchdog(config);
  EXPECT_EQ(watchdog->BackoffDelay(0), sim::FromMillis(10));
  EXPECT_EQ(watchdog->BackoffDelay(1), sim::FromMillis(20));
  EXPECT_EQ(watchdog->BackoffDelay(2), sim::FromMillis(40));
  EXPECT_EQ(watchdog->BackoffDelay(3), sim::FromMillis(70));   // capped
  EXPECT_EQ(watchdog->BackoffDelay(30), sim::FromMillis(70));  // stays capped
}

TEST(Watchdog, GivesUpAfterMaxRetriesAndRetiresGuest) {
  sim::EventQueue clock;
  InNetPlatform platform(&clock);
  WatchdogConfig config;
  config.max_retries = 2;
  platform.EnableWatchdog(config);
  std::string error;
  Ipv4Address addr = Ipv4Address::MustParse("172.16.3.10");
  Vm::VmId id = platform.Install(addr, kEchoConfig, &error);
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));

  // From here on, every boot fails — the guest can never come back.
  sim::FaultPlan plan;
  plan.boot_failure_p = 1.0;
  sim::FaultInjector injector(plan);
  platform.SetFaultInjector(&injector);
  ASSERT_TRUE(platform.vms().Crash(id));

  clock.RunUntil(sim::FromSeconds(30));
  EXPECT_EQ(platform.vms().Find(id), nullptr);  // retired
  auto stats = platform.watchdog()->stats();
  EXPECT_EQ(stats.crashes_observed, 1u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.restart_failures, 3u);  // max_retries + 1 failed attempts
  EXPECT_EQ(stats.gave_up, 1u);

  // Rules are gone: traffic for the address no longer stalls, it misses.
  uint64_t missed_before = platform.software_switch().missed_count();
  Packet p = Udp("9.9.9.9", "172.16.3.10", 7000, 80);
  platform.HandlePacket(p);
  EXPECT_EQ(platform.software_switch().missed_count(), missed_before + 1);
}

TEST(Watchdog, BoundedBufferOverflowAccounting) {
  sim::EventQueue clock;
  // The registry aggregates across platform instances (tests share the
  // process), so assert on the delta.
  uint64_t drops_before =
      obs::Registry().GetCounter("innet_platform_buffer_drops_total")->value();
  InNetPlatform platform(&clock);
  platform.set_buffer_cap(4);
  platform.EnableWatchdog();
  std::string error;
  Vm::VmId id = platform.Install(Ipv4Address::MustParse("172.16.3.10"), kEchoConfig, &error);
  ASSERT_NE(id, 0u) << error;
  clock.RunUntil(sim::FromSeconds(1));
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  ASSERT_TRUE(platform.vms().Crash(id));

  for (uint16_t i = 0; i < 10; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(7000 + i), 80);
    platform.HandlePacket(p);
  }
  EXPECT_EQ(platform.buffer_drops(), 6u);  // cap 4, 10 arrivals
  EXPECT_EQ(platform.watchdog()->stats().packets_dropped_bounded, 6u);
  EXPECT_EQ(obs::Registry().GetCounter("innet_platform_buffer_drops_total")->value(),
            drops_before + 6u);

  clock.RunUntil(sim::FromSeconds(3));
  EXPECT_EQ(egressed, 4);  // exactly the buffered packets survive the outage
}

// One run of a faulty workload, summarized for comparison across runs.
struct RecoveryTrace {
  std::vector<std::pair<sim::TimeNs, Vm::VmId>> crash_events;
  uint64_t crashes_observed = 0;
  uint64_t restarts = 0;
  uint64_t restart_failures = 0;
  uint64_t gave_up = 0;
  uint64_t buffer_drops = 0;
  uint64_t egressed = 0;
  sim::TimeNs end_time = 0;

  bool operator==(const RecoveryTrace& other) const {
    return crash_events == other.crash_events && crashes_observed == other.crashes_observed &&
           restarts == other.restarts && restart_failures == other.restart_failures &&
           gave_up == other.gave_up && buffer_drops == other.buffer_drops &&
           egressed == other.egressed && end_time == other.end_time;
  }
};

RecoveryTrace RunFaultyWorkload(uint64_t seed) {
  RecoveryTrace trace;
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.boot_failure_p = 0.2;
  plan.crash_mean_uptime_s = 0.5;
  sim::FaultInjector injector(plan);
  InNetPlatform platform(&clock);
  platform.SetFaultInjector(&injector);
  platform.EnableWatchdog();
  platform.vms().AddCrashObserver(
      [&](Vm* vm) { trace.crash_events.emplace_back(clock.now(), vm->id()); });
  platform.SetEgressHandler([&](Packet&) { ++trace.egressed; });

  for (int tenant = 0; tenant < 5; ++tenant) {
    platform.RegisterOnDemand(Ipv4Address::MustParse("172.16.3." + std::to_string(10 + tenant)),
                              kEchoConfig, VmKind::kClickOs, /*per_flow=*/false);
  }
  // A steady packet drip to every tenant for 5 simulated seconds.
  for (int tick = 0; tick < 500; ++tick) {
    clock.ScheduleAt(sim::FromMillis(10.0 * tick), [&platform, tick] {
      std::string dst = "172.16.3." + std::to_string(10 + tick % 5);
      Packet p = Packet::MakeUdp(Ipv4Address::MustParse("9.9.9.9"),
                                 Ipv4Address::MustParse(dst), 7000, 80, 32);
      platform.HandlePacket(p);
    });
  }
  clock.RunUntil(sim::FromSeconds(8));

  auto stats = platform.watchdog()->stats();
  trace.crashes_observed = stats.crashes_observed;
  trace.restarts = stats.restarts;
  trace.restart_failures = stats.restart_failures;
  trace.gave_up = stats.gave_up;
  trace.buffer_drops = platform.buffer_drops();
  trace.end_time = clock.now();
  return trace;
}

TEST(Watchdog, RecoveryTimelineIsDeterministicFromSeed) {
  RecoveryTrace first = RunFaultyWorkload(42);
  RecoveryTrace second = RunFaultyWorkload(42);
  EXPECT_TRUE(first == second);
  // The workload really exercised the fault path.
  EXPECT_GT(first.crash_events.size(), 0u);
  EXPECT_GT(first.restarts, 0u);
  EXPECT_GT(first.egressed, 0u);
}

TEST(FaultInjector, SameSeedSameDecisionStream) {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.boot_failure_p = 0.3;
  plan.crash_mean_uptime_s = 1.0;
  plan.packet_drop_p = 0.1;
  sim::FaultInjector a(plan);
  sim::FaultInjector b(plan);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.ShouldFailBoot(), b.ShouldFailBoot());
    EXPECT_EQ(a.NextCrashDelay(), b.NextCrashDelay());
    EXPECT_EQ(a.ShouldDropPacket(), b.ShouldDropPacket());
  }
  EXPECT_EQ(a.boot_failures_injected(), b.boot_failures_injected());
}

TEST(FaultInjector, SwitchDropsAndCorruptsPackets) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.packet_drop_p = 0.5;
  sim::FaultInjector injector(plan);
  InNetPlatform platform(&clock);
  platform.SetFaultInjector(&injector);
  std::string error;
  ASSERT_NE(platform.Install(Ipv4Address::MustParse("172.16.3.10"), kEchoConfig, &error), 0u);
  clock.RunUntil(sim::FromSeconds(1));
  int egressed = 0;
  platform.SetEgressHandler([&](Packet&) { ++egressed; });
  for (uint16_t i = 0; i < 200; ++i) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", static_cast<uint16_t>(7000 + i), 80);
    platform.HandlePacket(p);
  }
  EXPECT_EQ(platform.software_switch().fault_dropped_count(), injector.packets_dropped());
  EXPECT_GT(injector.packets_dropped(), 50u);
  EXPECT_LT(injector.packets_dropped(), 150u);
  EXPECT_EQ(static_cast<uint64_t>(egressed), 200 - injector.packets_dropped());
}

}  // namespace
}  // namespace innet
