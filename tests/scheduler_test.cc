// Scheduler subsystem: placement policies, admission control, the resource
// ledger, and the orchestrator-driven flows built on them — policy spread,
// quota enforcement, and suspend/resume live migration (the §5 mechanism
// turned into a placement primitive).
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/click/elements.h"
#include "src/controller/orchestrator.h"
#include "src/obs/int_telemetry.h"
#include "src/scheduler/admission.h"
#include "src/scheduler/engine.h"
#include "src/scheduler/ledger.h"
#include "src/scheduler/policy.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace innet::scheduler {
namespace {

PlatformResources MakeRes(const std::string& name, uint64_t total, uint64_t used,
                          bool available = true) {
  PlatformResources res;
  res.name = name;
  res.memory_total = total;
  res.memory_used = used;
  res.available = available;
  return res;
}

// --- Placement policies ----------------------------------------------------------------

TEST(PlacementPolicy, FirstFitKeepsSnapshotOrder) {
  std::vector<PlatformResources> snapshot = {
      MakeRes("a", 100, 90), MakeRes("b", 100, 10), MakeRes("c", 100, 50)};
  PlacementRequest request;
  request.memory_bytes = 10;
  EXPECT_EQ(RankPlatforms(PlacementPolicyKind::kFirstFit, snapshot, request),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PlacementPolicy, LeastLoadedOrdersByUtilizationAscending) {
  std::vector<PlatformResources> snapshot = {
      MakeRes("a", 100, 90), MakeRes("b", 100, 10), MakeRes("c", 100, 50)};
  PlacementRequest request;
  request.memory_bytes = 10;
  EXPECT_EQ(RankPlatforms(PlacementPolicyKind::kLeastLoaded, snapshot, request),
            (std::vector<std::string>{"b", "c", "a"}));
}

TEST(PlacementPolicy, BinPackOrdersByUtilizationDescending) {
  std::vector<PlatformResources> snapshot = {
      MakeRes("a", 100, 90), MakeRes("b", 100, 10), MakeRes("c", 100, 50)};
  PlacementRequest request;
  request.memory_bytes = 10;
  EXPECT_EQ(RankPlatforms(PlacementPolicyKind::kBinPack, snapshot, request),
            (std::vector<std::string>{"a", "c", "b"}));
}

TEST(PlacementPolicy, FiltersUnavailableAndFullPlatforms) {
  std::vector<PlatformResources> snapshot = {
      MakeRes("dead", 100, 0, /*available=*/false),  // failed over
      MakeRes("full", 100, 95),                      // 5 bytes free < 10 needed
      MakeRes("ok", 100, 50)};
  PlacementRequest request;
  request.memory_bytes = 10;
  for (PlacementPolicyKind kind : {PlacementPolicyKind::kFirstFit,
                                   PlacementPolicyKind::kLeastLoaded,
                                   PlacementPolicyKind::kBinPack}) {
    EXPECT_EQ(RankPlatforms(kind, snapshot, request), (std::vector<std::string>{"ok"}));
  }
}

TEST(PlacementPolicy, TiesBreakBySnapshotOrder) {
  // Equal utilization everywhere: every policy degenerates to name order, so
  // rankings stay deterministic.
  std::vector<PlatformResources> snapshot = {
      MakeRes("a", 100, 40), MakeRes("b", 100, 40), MakeRes("c", 100, 40)};
  PlacementRequest request;
  request.memory_bytes = 10;
  for (PlacementPolicyKind kind : {PlacementPolicyKind::kLeastLoaded,
                                   PlacementPolicyKind::kBinPack}) {
    EXPECT_EQ(RankPlatforms(kind, snapshot, request),
              (std::vector<std::string>{"a", "b", "c"}));
  }
}

TEST(PlacementPolicy, WireNamesRoundTrip) {
  for (PlacementPolicyKind kind : {PlacementPolicyKind::kFirstFit,
                                   PlacementPolicyKind::kLeastLoaded,
                                   PlacementPolicyKind::kBinPack}) {
    PlacementPolicyKind parsed;
    ASSERT_TRUE(ParsePlacementPolicy(PlacementPolicyName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PlacementPolicyKind parsed;
  EXPECT_FALSE(ParsePlacementPolicy("round_robin", &parsed));
}

// --- Admission control -----------------------------------------------------------------

TEST(Admission, ModuleQuotaRejectsWithStableReason) {
  AdmissionController admission;
  admission.SetQuota("tenant", TenantQuota{.max_modules = 2});
  std::string reason;
  EXPECT_TRUE(admission.Admit("tenant", 100, &reason));
  admission.Commit("tenant", 100);
  admission.Commit("tenant", 100);
  EXPECT_FALSE(admission.Admit("tenant", 100, &reason));
  EXPECT_EQ(reason, "admission: client tenant at module quota (2 of 2)");
}

TEST(Admission, MemoryQuotaRejectsAndReleaseRestores) {
  AdmissionController admission;
  admission.SetQuota("tenant", TenantQuota{.max_memory_bytes = 250});
  admission.Commit("tenant", 200);
  std::string reason;
  EXPECT_FALSE(admission.Admit("tenant", 100, &reason));
  EXPECT_NE(reason.find("memory quota"), std::string::npos);
  admission.Release("tenant", 200);
  EXPECT_TRUE(admission.Admit("tenant", 100, &reason));
  EXPECT_EQ(admission.UsageFor("tenant").modules, 0u);
}

TEST(Admission, QuotasArePerClient) {
  AdmissionController admission;
  admission.SetQuota("small", TenantQuota{.max_modules = 1});
  admission.Commit("small", 10);
  std::string reason;
  EXPECT_FALSE(admission.Admit("small", 10, &reason));
  EXPECT_TRUE(admission.Admit("other", 10, &reason));  // default quota: unlimited
}

// --- Resource ledger -------------------------------------------------------------------

TEST(Ledger, SnapshotIsNameSortedAndLive) {
  uint64_t used_b = 10;
  ResourceLedger ledger([&](const std::string& name, PlatformResources* out) {
    out->memory_total = 100;
    out->memory_used = name == "b" ? used_b : 50;
    return true;
  });
  ledger.AddPlatform("b");
  ledger.AddPlatform("a");
  std::vector<PlatformResources> snapshot = ledger.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "a");
  EXPECT_EQ(snapshot[1].name, "b");
  EXPECT_EQ(snapshot[1].memory_used, 10u);
  used_b = 70;  // no write-back bookkeeping: the next snapshot sees the probe
  EXPECT_EQ(ledger.Snapshot()[1].memory_used, 70u);
}

TEST(Ledger, SetAvailableOverridesProbe) {
  ResourceLedger ledger([](const std::string&, PlatformResources* out) {
    out->memory_total = 100;
    return true;
  });
  ledger.AddPlatform("a");
  ledger.SetAvailable("a", false);
  EXPECT_FALSE(ledger.Snapshot()[0].available);
  ledger.SetAvailable("a", true);
  EXPECT_TRUE(ledger.Snapshot()[0].available);
}

TEST(Ledger, VanishedPlatformsDropFromSnapshot) {
  ResourceLedger ledger(
      [](const std::string& name, PlatformResources*) { return name != "gone"; });
  ledger.AddPlatform("gone");
  ledger.AddPlatform("here");
  std::vector<PlatformResources> snapshot = ledger.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "here");
}

// --- Placement engine ------------------------------------------------------------------

TEST(Engine, RejectsWhenNoPlatformHasHeadroom) {
  PlacementEngine engine([](const std::string&, PlatformResources* out) {
    out->memory_total = 100;
    out->memory_used = 100;
    return true;
  });
  engine.ledger().AddPlatform("a");
  PlacementRequest request;
  request.memory_bytes = 10;
  PlacementDecision decision = engine.Decide("tenant", request);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.reject_reason,
            "placement: no platform has headroom (policy=first_fit, need=10 bytes)");
}

TEST(Engine, PinnedRequestSkipsRankingButNotQuota) {
  PlacementEngine engine([](const std::string&, PlatformResources* out) {
    out->memory_total = 100;
    out->memory_used = 100;  // no headroom anywhere — pinning bypasses the filter
    return true;
  });
  engine.ledger().AddPlatform("a");
  PlacementRequest request;
  request.memory_bytes = 10;
  request.pinned_platform = "a";
  PlacementDecision decision = engine.Decide("tenant", request);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(decision.candidates, (std::vector<std::string>{"a"}));

  engine.admission().SetQuota("tenant", TenantQuota{.max_modules = 0});
  decision = engine.Decide("tenant", request);
  EXPECT_FALSE(decision.admitted);
  EXPECT_NE(decision.reject_reason.find("module quota"), std::string::npos);
}

}  // namespace
}  // namespace innet::scheduler

// --- Orchestrator + scheduler: spread, quotas, live migration --------------------------

namespace innet::controller {
namespace {

using platform::Vm;
using platform::VmState;

// Stateful but statically safe: FlowMeter keeps per-flow state (so the
// orchestrator gives it a dedicated VM — migratable), and the config passes
// the Table 1 checks for plain clients. `client_addr` must be whitelisted.
ClientRequest MeterRequest(const std::string& client_id, const std::string& client_addr,
                           const std::string& owned_prefix) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = RequesterClass::kClient;
  request.click_config = "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - " +
                         client_addr + " - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse(client_addr)};
  request.owned_prefixes = {Ipv4Prefix::MustParse(owned_prefix)};
  return request;
}

// The Figure 4 batcher: its reach requirement only holds on platform3, which
// makes it the canonical "target fails verification" migration victim.
ClientRequest BatcherRequest() {
  ClientRequest request;
  request.client_id = "mobile1";
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0)"
      "-> TimedUnqueue(120,100)"
      "-> dst :: ToNetfront();";
  request.requirements =
      "reach from internet udp -> client dst port 1500 "
      "const proto && dst port && payload";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

ClientRequest StatelessRequest(const std::string& client_id, uint16_t port) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port " + std::to_string(port) +
      ") -> IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

uint64_t FlowCount(Vm* vm) {
  auto* meter = dynamic_cast<click::FlowMeter*>(vm->graph()->FindByClass("FlowMeter"));
  return meter == nullptr ? 0 : meter->flow_count();
}

TEST(SchedulerSpread, FirstFitStacksLeastLoadedSpreads) {
  for (bool spread : {false, true}) {
    sim::EventQueue clock;
    OrchestratorOptions options;
    options.policy = spread ? scheduler::PlacementPolicyKind::kLeastLoaded
                            : scheduler::PlacementPolicyKind::kFirstFit;
    Orchestrator orch(topology::Network::MakeMultiPop(4), &clock, options);
    for (int i = 0; i < 4; ++i) {
      auto result = orch.Deploy(
          MeterRequest("meter" + std::to_string(i), "10.1.0.5", "10.1.0.0/16"));
      ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
      EXPECT_NE(result.vm_id, 0u);  // stateful -> dedicated VM
    }
    if (spread) {
      // One 8 MB guest per platform: each deploy lands on the emptiest box.
      for (const char* name : {"platform0", "platform1", "platform2", "platform3"}) {
        EXPECT_EQ(orch.platform(name)->vms().vm_count(), 1u) << name;
      }
    } else {
      // First-fit keeps stacking the name-first platform while it has room.
      EXPECT_EQ(orch.platform("platform0")->vms().vm_count(), 4u);
    }
  }
}

TEST(SchedulerSpread, BinPackRefillsThePartiallyLoadedPlatform) {
  sim::EventQueue clock;
  OrchestratorOptions options;
  options.policy = scheduler::PlacementPolicyKind::kBinPack;
  Orchestrator orch(topology::Network::MakeMultiPop(3), &clock, options);
  // Seed one tenant (all platforms empty: tie broken by name -> platform0),
  // then every later tenant bin-packs onto the same partially loaded box.
  for (int i = 0; i < 3; ++i) {
    auto result =
        orch.Deploy(MeterRequest("meter" + std::to_string(i), "10.1.0.5", "10.1.0.0/16"));
    ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
    EXPECT_EQ(result.outcome.platform, "platform0");
  }
}

TEST(SchedulerQuota, DeployEnforcesAndKillReleases) {
  sim::EventQueue clock;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  orch.engine().admission().SetQuota("mobile1", scheduler::TenantQuota{.max_modules = 1});

  auto first = orch.Deploy(BatcherRequest());
  ASSERT_TRUE(first.outcome.accepted) << first.outcome.reason;
  auto second = orch.Deploy(BatcherRequest());
  EXPECT_FALSE(second.outcome.accepted);
  EXPECT_NE(second.outcome.reason.find("module quota"), std::string::npos);
  EXPECT_EQ(orch.placement_count(), 1u);

  ASSERT_TRUE(orch.Kill(first.outcome.module_id));
  auto third = orch.Deploy(BatcherRequest());
  EXPECT_TRUE(third.outcome.accepted) << third.outcome.reason;
}

class Migration : public ::testing::Test {
 protected:
  Migration() : orch_(topology::Network::MakeFigure3(), &clock_) {}

  sim::EventQueue clock_;
  Orchestrator orch_;
};

TEST_F(Migration, StartRejectsBadArguments) {
  EXPECT_EQ(orch_.MigrateTenant("nope", "platform2").reason, "unknown module id");
  auto result = orch_.Deploy(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"));
  ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
  EXPECT_EQ(orch_.MigrateTenant(result.outcome.module_id, result.outcome.platform).reason,
            "module already on target platform");
  EXPECT_EQ(orch_.MigrateTenant(result.outcome.module_id, "platform9").reason,
            "unknown target platform");
}

// THE acceptance test: a stateful tenant keeps serving traffic across a live
// migration. Packets arriving during the suspend/transfer blackout park in
// the source's bounded stall buffer and are re-addressed + replayed on the
// target; the flow table and injection counters carry over byte-for-byte.
TEST_F(Migration, LiveMigrationPreservesStatefulTenant) {
  auto deployed = orch_.Deploy(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"));
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  ASSERT_NE(deployed.vm_id, 0u);
  const std::string source = deployed.outcome.platform;
  const std::string target = source == "platform2" ? "platform1" : "platform2";
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));  // guest boots

  int egress_source = 0;
  int egress_target = 0;
  orch_.platform(source)->SetEgressHandler([&](Packet&) { ++egress_source; });
  orch_.platform(target)->SetEgressHandler([&](Packet&) { ++egress_target; });

  auto send = [&](const std::string& platform, Ipv4Address dst, uint16_t src_port) {
    Packet packet =
        Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"), dst, src_port, 53, 64);
    orch_.platform(platform)->HandlePacket(packet);
  };

  // Phase 1: three flows through the source.
  for (uint16_t port : {4000, 4001, 4002}) {
    send(source, deployed.outcome.module_addr, port);
  }
  EXPECT_EQ(egress_source, 3);
  EXPECT_EQ(FlowCount(orch_.platform(source)->vms().Find(deployed.vm_id)), 3u);

  std::optional<MigrationReport> report;
  MigrationStart start = orch_.MigrateTenant(
      deployed.outcome.module_id, target,
      [&](const MigrationReport& r) { report = r; });
  ASSERT_TRUE(start.started) << start.reason;

  // Phase 2: the blackout. The guest is suspending; traffic parks in the
  // stall buffer instead of resuming it (the migration announced itself).
  for (uint16_t port : {4003, 4004}) {
    send(source, deployed.outcome.module_addr, port);
  }
  EXPECT_EQ(egress_source, 3);  // nothing leaked out mid-blackout

  clock_.RunUntil(clock_.now() + sim::FromSeconds(2));  // suspend + transfer + resume
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->ok) << report->reason;
  EXPECT_TRUE(report->live);
  EXPECT_EQ(report->source, source);
  EXPECT_EQ(report->target, target);
  EXPECT_EQ(report->parked_packets, 2u);
  // Re-verification on the target minted a fresh deployment.
  EXPECT_NE(report->new_module_id, report->module_id);
  EXPECT_FALSE(orch_.HasPlacement(deployed.outcome.module_id));
  const auto* placement = orch_.FindPlacement(report->new_module_id);
  ASSERT_NE(placement, nullptr);
  EXPECT_EQ(placement->first, target);
  // The blackout traffic was re-addressed and delivered on the target.
  EXPECT_EQ(egress_target, 2);

  // Phase 3: new traffic to the new address.
  for (uint16_t port : {4005, 4006}) {
    send(target, report->new_addr, port);
  }
  EXPECT_EQ(egress_target, 4);
  EXPECT_EQ(egress_source + egress_target, 7);  // every packet delivered

  // State continuity: the flow table still holds the pre-migration flows
  // (7 distinct flows total; a reboot would have forgotten the first 3), and
  // the injection counter carried across the transfer.
  Vm* moved = orch_.platform(target)->vms().Find(placement->second);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->state(), VmState::kRunning);
  EXPECT_EQ(FlowCount(moved), 7u);
  EXPECT_EQ(moved->injected_count(), 7u);
  // The source forgot the guest entirely.
  EXPECT_EQ(orch_.platform(source)->vms().Find(deployed.vm_id), nullptr);
}

// Data-plane telemetry must follow the tenant across a live migration: after
// cutover, folded-stack attribution charges the tenant's chains to the
// target's new vm (no stale rows linger on the source), and the verify-time
// path digest is re-registered under the tenant's new module address with
// the old address cleared — so INT attestation keeps working seamlessly.
TEST_F(Migration, ProfilerAttributionAndPathDigestFollowTheTenant) {
  obs::Int().Clear();
  auto deployed = orch_.Deploy(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"));
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  const std::string source = deployed.outcome.platform;
  const std::string target = source == "platform2" ? "platform1" : "platform2";
  orch_.platform(source)->EnableDataplaneProfiling(0, 0);
  orch_.platform(target)->EnableDataplaneProfiling(0, 0);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));

  // The deploy registered the digest under both attribution keys.
  EXPECT_TRUE(obs::Int().HasTenantDigest("meter"));
  EXPECT_TRUE(obs::Int().HasTenantDigest(deployed.outcome.module_addr.ToString()));

  auto send = [&](const std::string& platform, Ipv4Address dst, uint16_t port) {
    Packet packet = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"), dst, port, 53, 64);
    orch_.platform(platform)->HandlePacket(packet);
  };
  for (uint16_t port : {4000, 4001, 4002}) {
    send(source, deployed.outcome.module_addr, port);
  }
  std::ostringstream before;
  orch_.platform(source)->WriteFoldedStacks(before);
  EXPECT_NE(before.str().find("FlowMeter"), std::string::npos) << before.str();

  std::optional<MigrationReport> report;
  MigrationStart start = orch_.MigrateTenant(
      deployed.outcome.module_id, target,
      [&](const MigrationReport& r) { report = r; });
  ASSERT_TRUE(start.started) << start.reason;
  clock_.RunUntil(clock_.now() + sim::FromSeconds(2));
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->ok) << report->reason;

  for (uint16_t port : {4003, 4004}) {
    send(target, report->new_addr, port);
  }

  // Post-cutover traffic is charged to the target's new vm id...
  const auto* placement = orch_.FindPlacement(report->new_module_id);
  ASSERT_NE(placement, nullptr);
  std::ostringstream after_target;
  orch_.platform(target)->WriteFoldedStacks(after_target);
  const std::string vm_prefix = "vm:" + std::to_string(placement->second) + ";";
  EXPECT_NE(after_target.str().find(vm_prefix), std::string::npos) << after_target.str();
  EXPECT_NE(after_target.str().find("FlowMeter"), std::string::npos) << after_target.str();
  // ...and the source kept no stale rows for the departed guest.
  std::ostringstream after_source;
  orch_.platform(source)->WriteFoldedStacks(after_source);
  EXPECT_EQ(after_source.str().find("FlowMeter"), std::string::npos) << after_source.str();

  // Digest carry-through: still keyed by client id, re-keyed to the new
  // address (a different platform pool, so the old key must be gone).
  EXPECT_TRUE(obs::Int().HasTenantDigest("meter"));
  EXPECT_TRUE(obs::Int().HasTenantDigest(report->new_addr.ToString()));
  EXPECT_FALSE(obs::Int().HasTenantDigest(deployed.outcome.module_addr.ToString()));
  obs::Int().Clear();
}

// The target must re-pass the full verification pipeline; when it cannot,
// the migration aborts and the tenant stays (and keeps serving) on the
// source. The batcher's reach requirement only holds on platform3.
TEST_F(Migration, AbortsWhenTargetFailsVerification) {
  auto deployed = orch_.Deploy(BatcherRequest());
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  ASSERT_EQ(deployed.outcome.platform, "platform3");
  ASSERT_NE(deployed.vm_id, 0u);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));

  std::optional<MigrationReport> report;
  MigrationStart start = orch_.MigrateTenant(
      deployed.outcome.module_id, "platform1",
      [&](const MigrationReport& r) { report = r; });
  ASSERT_TRUE(start.started) << start.reason;  // the suspend did start
  clock_.RunUntil(clock_.now() + sim::FromSeconds(2));

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->ok);
  EXPECT_NE(report->reason.find("target verification failed"), std::string::npos);
  // The tenant never left platform3.
  const auto* placement = orch_.FindPlacement(deployed.outcome.module_id);
  ASSERT_NE(placement, nullptr);
  EXPECT_EQ(placement->first, "platform3");
  EXPECT_EQ(orch_.platform("platform1")->vms().vm_count(), 0u);

  // It still serves traffic: the next packet resumes the suspended guest.
  platform::InNetPlatform* box = orch_.platform("platform3");
  Packet packet = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                  deployed.outcome.module_addr, 4000, 1500, 64);
  box->HandlePacket(packet);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
  Vm* guest = box->vms().Find(deployed.vm_id);
  ASSERT_NE(guest, nullptr);
  EXPECT_EQ(guest->state(), VmState::kRunning);
  EXPECT_EQ(guest->injected_count(), 1u);
}

TEST_F(Migration, ConsolidatedTenantMovesMakeBeforeBreak) {
  auto deployed = orch_.Deploy(StatelessRequest("web", 1500));
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  ASSERT_TRUE(deployed.consolidated);
  const std::string source = deployed.outcome.platform;
  const std::string target = source == "platform2" ? "platform1" : "platform2";

  std::optional<MigrationReport> report;
  MigrationStart start = orch_.MigrateTenant(
      deployed.outcome.module_id, target,
      [&](const MigrationReport& r) { report = r; });
  ASSERT_TRUE(start.started) << start.reason;
  // Stateless: nothing to suspend, the report is synchronous.
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->ok) << report->reason;
  EXPECT_FALSE(report->live);
  const auto* placement = orch_.FindPlacement(report->new_module_id);
  ASSERT_NE(placement, nullptr);
  EXPECT_EQ(placement->first, target);
  EXPECT_EQ(placement->second, 0u);  // re-consolidated on the target
  EXPECT_EQ(orch_.ConsolidatedTenantCount(source), 0u);
  EXPECT_EQ(orch_.ConsolidatedTenantCount(target), 1u);
}

// A migration whose snapshot left the source but whose import/cutover leg is
// cut off must re-adopt the guest on the source *exactly once* — retried and
// duplicated control messages all collapse onto one idempotency token.
TEST_F(Migration, AbortUnderControlLossResumesSourceExactlyOnce) {
  auto deployed = orch_.Deploy(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"));
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  ASSERT_NE(deployed.vm_id, 0u);
  const std::string source = deployed.outcome.platform;
  const std::string target = source == "platform2" ? "platform1" : "platform2";
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));  // guest boots

  // Seed some flow state and duplicate control messages aggressively: the
  // re-import on the source must still happen once, not once per copy.
  int egress_source = 0;
  orch_.platform(source)->SetEgressHandler([&](Packet&) { ++egress_source; });
  for (uint16_t port : {4000, 4001, 4002}) {
    Packet packet = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                    deployed.outcome.module_addr, port, 53, 64);
    orch_.platform(source)->HandlePacket(packet);
  }
  ASSERT_EQ(egress_source, 3);

  sim::FaultPlan plan;
  plan.seed = 11;
  plan.control_dup_p = 0.6;
  plan.control_delay_mean_ms = 1.0;
  sim::FaultInjector faults(plan);
  orch_.SetControlFaults(&faults);
  // The target is cut off: suspend and export succeed on the source, then
  // the snapshot-import message vanishes into the partition until the
  // client exhausts its retries.
  orch_.SetPartitioned(target, true);

  std::optional<MigrationReport> report;
  MigrationStart start = orch_.MigrateTenant(
      deployed.outcome.module_id, target,
      [&](const MigrationReport& r) { report = r; });
  ASSERT_TRUE(start.started) << start.reason;
  clock_.RunUntil(clock_.now() + sim::FromSeconds(60));

  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->ok);
  EXPECT_NE(report->reason.find("gave up"), std::string::npos);
  // The guest is back on the source — exactly one of it — still holding its
  // pre-migration flow table, and the placement still points there.
  EXPECT_EQ(orch_.platform(source)->vms().vm_count(), 1u);
  EXPECT_EQ(orch_.platform(target)->vms().vm_count(), 0u);
  const auto* placement = orch_.FindPlacement(deployed.outcome.module_id);
  ASSERT_NE(placement, nullptr);
  EXPECT_EQ(placement->first, source);
  Vm* guest = orch_.platform(source)->vms().Find(placement->second);
  ASSERT_NE(guest, nullptr);
  EXPECT_EQ(FlowCount(guest), 3u);
  // No stranded reservation: the target's share was released on abort, so
  // admission sees exactly the one original module.
  EXPECT_EQ(orch_.engine().admission().UsageFor("meter").modules, 1u);
  // It keeps serving on the source.
  Packet packet = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                  deployed.outcome.module_addr, 4003, 53, 64);
  orch_.platform(source)->HandlePacket(packet);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
  EXPECT_EQ(FlowCount(orch_.platform(source)->vms().Find(placement->second)), 4u);
}

// The RAII reservation guard: a deploy that fails after admission (here:
// verification) must release its quota share on the early-exit path, or the
// tenant's next attempt would be falsely quota-rejected.
TEST(SchedulerQuota, FailedDeployReleasesReservation) {
  sim::EventQueue clock;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  orch.engine().admission().SetQuota("mobile1", scheduler::TenantQuota{.max_modules = 1});

  // The batcher's requirement only holds on platform3: pinning it to
  // platform1 passes admission, then fails verification.
  ClientRequest doomed = BatcherRequest();
  doomed.pinned_platform = "platform1";
  auto failed = orch.Deploy(doomed);
  ASSERT_FALSE(failed.outcome.accepted);
  EXPECT_EQ(orch.engine().admission().UsageFor("mobile1").modules, 0u);

  // With max_modules = 1, a leaked reservation would reject this.
  auto ok = orch.Deploy(BatcherRequest());
  EXPECT_TRUE(ok.outcome.accepted) << ok.outcome.reason;
  EXPECT_EQ(orch.engine().admission().UsageFor("mobile1").modules, 1u);
}

TEST(Failover, MarkPlatformFailedIsIdempotentAndSafeForUnknownNames) {
  sim::EventQueue clock;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  auto deployed = orch.Deploy(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"));
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;

  FailoverReport unknown = orch.MarkPlatformFailed("no-such-platform");
  EXPECT_TRUE(unknown.unknown_platform);
  EXPECT_EQ(unknown.tenants_affected, 0u);
  EXPECT_EQ(orch.placement_count(), 1u);  // nothing was touched

  FailoverReport first = orch.MarkPlatformFailed(deployed.outcome.platform);
  EXPECT_FALSE(first.unknown_platform);
  EXPECT_FALSE(first.already_failed);
  EXPECT_EQ(first.tenants_affected, 1u);
  EXPECT_EQ(first.recovered, 1u);
  size_t placements_after = orch.placement_count();

  // Repeating the report must not re-run failover (which would kill and
  // re-place the already-recovered tenants a second time).
  FailoverReport again = orch.MarkPlatformFailed(deployed.outcome.platform);
  EXPECT_TRUE(again.already_failed);
  EXPECT_EQ(again.tenants_affected, 0u);
  EXPECT_EQ(orch.placement_count(), placements_after);
}

TEST(Rebalance, DrainsHotPlatformsThroughLiveMigration) {
  sim::EventQueue clock;
  OrchestratorOptions options;
  options.platform_memory_bytes = 32ull << 20;  // 4 ClickOS guests per box
  Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);
  // First-fit packs all four stateful tenants onto platform1 -> 100% full.
  for (int i = 0; i < 4; ++i) {
    auto result = orch.Deploy(
        MeterRequest("meter" + std::to_string(i), "10.10.0.5", "10.10.0.0/24"));
    ASSERT_TRUE(result.outcome.accepted) << result.outcome.reason;
    ASSERT_EQ(result.outcome.platform, "platform1");
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(1));

  RebalanceReport report = orch.Rebalance(/*drain_above_utilization=*/0.5);
  EXPECT_EQ(report.hot_platforms, 1u);
  EXPECT_EQ(report.migrations_started, 2u);  // 100% -> 50% needs two moves
  clock.RunUntil(clock.now() + sim::FromSeconds(2));

  EXPECT_EQ(orch.placement_count(), 4u);  // nobody was lost
  EXPECT_EQ(orch.platform("platform1")->vms().vm_count(), 2u);
  EXPECT_EQ(orch.platform("platform2")->vms().vm_count() +
                orch.platform("platform3")->vms().vm_count(),
            2u);
  // A second pass finds nothing hot.
  RebalanceReport again = orch.Rebalance(/*drain_above_utilization=*/0.5);
  EXPECT_EQ(again.hot_platforms, 0u);
  EXPECT_EQ(again.migrations_started, 0u);
}

}  // namespace
}  // namespace innet::controller
