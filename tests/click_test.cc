#include <gtest/gtest.h>

#include "src/click/config_parser.h"
#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/click/registry.h"
#include "src/sim/event_queue.h"

namespace innet::click {
namespace {

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport,
           size_t payload = 10) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         payload);
}

Packet Tcp(const char* src, const char* dst, uint16_t sport, uint16_t dport,
           uint8_t flags = 0) {
  return Packet::MakeTcp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         flags, 10);
}

// --- Config parser ------------------------------------------------------------------

TEST(ConfigParser, ParsesDeclarationsAndChains) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "// a comment\n"
      "src :: FromNetfront();\n"
      "dst :: ToNetfront();\n"
      "src -> Counter() -> dst;\n",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->elements.size(), 3u);  // src, dst, anonymous Counter
  EXPECT_EQ(config->connections.size(), 2u);
}

TEST(ConfigParser, ParsesPaperFigure4) {
  // The batcher request from the paper, verbatim structure.
  std::string error;
  auto config = ConfigGraph::Parse(
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 172.16.15.133 - 0 0)"
      "-> TimedUnqueue(120,100)"
      "-> dst::ToNetfront();",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->elements.size(), 5u);
  ASSERT_NE(config->FindElement("dst"), nullptr);
  EXPECT_EQ(config->FindElement("dst")->class_name, "ToNetfront");
}

TEST(ConfigParser, ParsesExplicitPorts) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "c :: IPClassifier(udp, tcp);\n"
      "src :: FromNetfront();\n"
      "u :: ToNetfront(); t :: ToNetfront();\n"
      "src -> c;\n"
      "c[0] -> u;\n"
      "c[1] -> t;\n",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  bool found_port1 = false;
  for (const Connection& conn : config->connections) {
    if (conn.from == "c" && conn.from_port == 1) {
      EXPECT_EQ(conn.to, "t");
      found_port1 = true;
    }
  }
  EXPECT_TRUE(found_port1);
}

TEST(ConfigParser, RejectsDuplicateNames) {
  std::string error;
  EXPECT_FALSE(ConfigGraph::Parse("a :: Counter(); a :: Counter();", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ConfigParser, RejectsUndeclaredReference) {
  std::string error;
  EXPECT_FALSE(ConfigGraph::Parse("nosuch -> alsonot;", &error).has_value());
}

TEST(ConfigParser, RejectsUnbalancedParens) {
  std::string error;
  EXPECT_FALSE(ConfigGraph::Parse("a :: IPFilter(allow udp;", &error).has_value());
}

TEST(ConfigParser, ToStringRoundTrips) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "src :: FromNetfront(); dst :: ToNetfront(); src -> Counter() -> dst;", &error);
  ASSERT_TRUE(config.has_value());
  auto again = ConfigGraph::Parse(config->ToString(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->elements.size(), config->elements.size());
  EXPECT_EQ(again->connections.size(), config->connections.size());
}

TEST(ConfigParser, ElementClassExpansion) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "elementclass SafeFw {"
      "  input -> IPFilter(allow udp dst port 1500) ->"
      "  IPRewriter(pattern - - 10.10.0.5 - 0 0) -> output;"
      "};"
      "src :: FromNetfront(); sink :: ToNetfront();"
      "fw :: SafeFw();"
      "src -> fw -> sink;",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  // The compound got inlined: no 'fw' element remains, its internals do.
  EXPECT_EQ(config->FindElement("fw"), nullptr);
  bool found_filter = false;
  for (const ElementDecl& decl : config->elements) {
    if (decl.class_name == "IPFilter") {
      EXPECT_EQ(decl.name.rfind("fw.", 0), 0u) << decl.name;
      found_filter = true;
    }
  }
  EXPECT_TRUE(found_filter);

  // And it runs.
  auto graph = Graph::Build(*config, &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet hit = Udp("8.8.8.8", "172.16.3.10", 40, 1500);
  Packet miss = Udp("8.8.8.8", "172.16.3.10", 40, 99);
  graph->InjectAtSource(hit);
  graph->InjectAtSource(miss);
  auto* sink = graph->FindAs<ToNetfront>("sink");
  ASSERT_EQ(sink->packet_count(), 1u);
}

TEST(ConfigParser, ElementClassMultiPort) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "elementclass Split {"
      "  cls :: IPClassifier(udp, -);"
      "  input -> cls;"
      "  cls[0] -> [0]output;"
      "  cls[1] -> [1]output;"
      "};"
      "src :: FromNetfront(); u :: ToNetfront(); t :: ToNetfront();"
      "sp :: Split();"
      "src -> sp; sp[0] -> u; sp[1] -> t;",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto graph = Graph::Build(*config, &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet udp = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  Packet tcp = Tcp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(udp);
  graph->InjectAtSource(tcp);
  EXPECT_EQ(graph->FindAs<ToNetfront>("u")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("t")->packet_count(), 1u);
}

TEST(ConfigParser, ElementClassNestedUse) {
  // A compound using another compound expands recursively.
  std::string error;
  auto config = ConfigGraph::Parse(
      "elementclass Inner { input -> Counter() -> output; };"
      "elementclass Outer { input -> Inner() -> Inner() -> output; };"
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> Outer() -> sink;",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto graph = Graph::Build(*config, &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
  int counters = 0;
  for (const auto& element : graph->elements()) {
    if (element->class_name() == "Counter") {
      EXPECT_EQ(dynamic_cast<Counter*>(element.get())->packet_count(), 1u);
      ++counters;
    }
  }
  EXPECT_EQ(counters, 2);
}

TEST(ConfigParser, ElementClassErrors) {
  std::string error;
  // Recursive compound: expansion depth limit trips.
  EXPECT_FALSE(ConfigGraph::Parse(
                   "elementclass Loop { input -> Loop() -> output; };"
                   "a :: FromNetfront(); b :: ToNetfront(); a -> Loop() -> b;",
                   &error)
                   .has_value());
  // Unterminated body.
  EXPECT_FALSE(ConfigGraph::Parse("elementclass X { input -> output;", &error).has_value());
  // Wiring input straight to output is unsupported.
  EXPECT_FALSE(ConfigGraph::Parse(
                   "elementclass Y { input -> output; };"
                   "a :: FromNetfront(); b :: ToNetfront(); a -> Y() -> b;",
                   &error)
                   .has_value());
  // Referencing a missing compound port.
  EXPECT_FALSE(ConfigGraph::Parse(
                   "elementclass Z { input -> Counter() -> output; };"
                   "a :: FromNetfront(); b :: ToNetfront(); z :: Z();"
                   "a -> [1]z; z -> b;",
                   &error)
                   .has_value());
  // Duplicate definition.
  EXPECT_FALSE(ConfigGraph::Parse(
                   "elementclass D { input -> Counter() -> output; };"
                   "elementclass D { input -> Counter() -> output; };",
                   &error)
                   .has_value());
}

TEST(ConfigParser, ElementClassSymbolicModels) {
  // Expanded compounds are plain elements, so the checker sees through them.
  std::string error;
  auto config = ConfigGraph::Parse(
      "elementclass SafeFw {"
      "  input -> IPFilter(allow udp dst port 1500) ->"
      "  IPRewriter(pattern - - 10.10.0.5 - 0 0) -> output;"
      "};"
      "FromNetfront() -> SafeFw() -> ToNetfront();",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  for (const ElementDecl& decl : config->elements) {
    EXPECT_TRUE(Registry::Global().Contains(decl.class_name)) << decl.class_name;
  }
}

TEST(ConfigParser, BlockComments) {
  std::string error;
  auto config = ConfigGraph::Parse("/* hi\nthere */ a :: Counter();", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->elements.size(), 1u);
}

// --- Graph building -----------------------------------------------------------------

TEST(Graph, BuildsAndRoutesPackets) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront(); src -> Counter() -> sink;", &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  auto* sink = graph->FindAs<ToNetfront>("sink");
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->packet_count(), 1u);
}

TEST(Graph, RejectsUnknownClass) {
  std::string error;
  EXPECT_EQ(Graph::FromText("a :: NoSuchElement();", &error), nullptr);
  EXPECT_NE(error.find("unknown element class"), std::string::npos);
}

TEST(Graph, RejectsOutOfRangePort) {
  std::string error;
  EXPECT_EQ(Graph::FromText("a :: Counter(); b :: Counter(); a[3] -> b;", &error), nullptr);
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(Registry, KnowsAllDocumentedClasses) {
  const Registry& reg = Registry::Global();
  for (const char* name :
       {"FromNetfront", "ToNetfront", "IPFilter", "IPClassifier", "IPRewriter", "TimedUnqueue",
        "ChangeEnforcer", "FlowMeter", "RateLimiter", "ContentMatch", "UDPTunnelEncap",
        "UDPTunnelDecap", "LinearIPLookup", "NatRewriter", "DnsGeoServer", "ReverseProxy",
        "X86Vm", "TransparentProxy", "Tee", "Counter", "Discard", "SetIPSrc", "SetIPDst",
        "DecIPTTL", "CheckIPHeader", "Queue"}) {
    EXPECT_TRUE(reg.Contains(name)) << name;
  }
}

// --- IPFilter -----------------------------------------------------------------------

TEST(IPFilter, AllowRuleForwardsMatch) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> IPFilter(allow udp dst port 1500) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet hit = Udp("1.1.1.1", "2.2.2.2", 99, 1500);
  Packet miss = Udp("1.1.1.1", "2.2.2.2", 99, 1501);
  graph->InjectAtSource(hit);
  graph->InjectAtSource(miss);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
}

TEST(IPFilter, DenyThenAllow) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> IPFilter(deny src net 10.0.0.0/8, allow all) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet denied = Udp("10.1.1.1", "2.2.2.2", 1, 2);
  Packet allowed = Udp("8.8.8.8", "2.2.2.2", 1, 2);
  graph->InjectAtSource(denied);
  graph->InjectAtSource(allowed);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
}

TEST(IPFilter, DefaultDeny) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> IPFilter(allow tcp) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr);
  Packet udp = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(udp);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 0u);
}

TEST(IPFilter, RejectsBadRule) {
  std::string error;
  EXPECT_EQ(Graph::FromText("a :: IPFilter(frobnicate udp);", &error), nullptr);
}

// --- IPClassifier --------------------------------------------------------------------

TEST(IPClassifier, FirstMatchWins) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); a :: ToNetfront(); b :: ToNetfront(); c :: ToNetfront();"
      "cls :: IPClassifier(udp dst port 53, udp, -);"
      "src -> cls; cls[0] -> a; cls[1] -> b; cls[2] -> c;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet dns = Udp("1.1.1.1", "2.2.2.2", 9, 53);
  Packet other_udp = Udp("1.1.1.1", "2.2.2.2", 9, 99);
  Packet tcp = Tcp("1.1.1.1", "2.2.2.2", 9, 99);
  graph->InjectAtSource(dns);
  graph->InjectAtSource(other_udp);
  graph->InjectAtSource(tcp);
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("b")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("c")->packet_count(), 1u);
}

// --- IPRewriter / SetIP -------------------------------------------------------------

TEST(IPRewriter, RewritesOnlyNonDashFields) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("sink")->set_handler([&](Packet& p) { observed = p; });
  Packet p = Udp("9.9.9.9", "2.2.2.2", 42, 1500);
  graph->InjectAtSource(p);
  EXPECT_EQ(observed.ip_dst(), Ipv4Address::MustParse("172.16.15.133"));
  EXPECT_EQ(observed.ip_src(), Ipv4Address::MustParse("9.9.9.9"));  // unchanged
  EXPECT_EQ(observed.dst_port(), 1500);                              // unchanged
  EXPECT_TRUE(observed.VerifyIpChecksum());
}

TEST(SetIPSrcDst, Rewrite) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> SetIPSrc(5.5.5.5) -> SetIPDst(6.6.6.6) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("sink")->set_handler([&](Packet& p) { observed = p; });
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(observed.ip_src(), Ipv4Address::MustParse("5.5.5.5"));
  EXPECT_EQ(observed.ip_dst(), Ipv4Address::MustParse("6.6.6.6"));
}

TEST(DecIPTTL, DropsExpired) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront(); src -> DecIPTTL() -> sink;", &error);
  ASSERT_NE(graph, nullptr);
  Packet ok = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  Packet dying = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  dying.set_ttl(1);
  graph->InjectAtSource(ok);
  graph->InjectAtSource(dying);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
}

TEST(CheckIPHeader, DropsCorrupted) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront(); src -> CheckIPHeader() -> sink;", &error);
  ASSERT_NE(graph, nullptr);
  Packet good = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  Packet bad = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  bad.mutable_data()[kEthHeaderLen + 8] ^= 0x55;  // corrupt without refresh
  graph->InjectAtSource(good);
  graph->InjectAtSource(bad);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
}

// --- Tee ------------------------------------------------------------------------------

TEST(Tee, CopiesToAllOutputs) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); t :: Tee(3);"
      "a :: ToNetfront(); b :: ToNetfront(); c :: ToNetfront();"
      "src -> t; t[0] -> a; t[1] -> b; t[2] -> c;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("b")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("c")->packet_count(), 1u);
}

// --- TimedUnqueue ---------------------------------------------------------------------

TEST(TimedUnqueue, BatchesOnClock) {
  sim::EventQueue clock;
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> TimedUnqueue(2, 10) -> sink;",
      &error, &clock);
  ASSERT_NE(graph, nullptr) << error;
  auto* sink = graph->FindAs<ToNetfront>("sink");
  for (int i = 0; i < 5; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 1500);
    graph->InjectAtSource(p);
  }
  EXPECT_EQ(sink->packet_count(), 0u);  // held until the timer fires
  clock.RunUntil(sim::FromSeconds(1.9));
  EXPECT_EQ(sink->packet_count(), 0u);
  clock.RunUntil(sim::FromSeconds(2.1));
  EXPECT_EQ(sink->packet_count(), 5u);  // burst 10 >= queue
}

TEST(TimedUnqueue, RespectsBurst) {
  sim::EventQueue clock;
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront();"
      "src -> TimedUnqueue(1, 2) -> sink;",
      &error, &clock);
  ASSERT_NE(graph, nullptr) << error;
  auto* sink = graph->FindAs<ToNetfront>("sink");
  for (int i = 0; i < 5; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 1500);
    graph->InjectAtSource(p);
  }
  clock.RunUntil(sim::FromSeconds(1.1));
  EXPECT_EQ(sink->packet_count(), 2u);
  clock.RunUntil(sim::FromSeconds(2.1));
  EXPECT_EQ(sink->packet_count(), 4u);
  clock.RunUntil(sim::FromSeconds(3.1));
  EXPECT_EQ(sink->packet_count(), 5u);
}

TEST(TimedUnqueue, PassthroughWithoutClock) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront(); src -> TimedUnqueue(120,100) -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
}

// --- ChangeEnforcer (sandbox element) --------------------------------------------------

class ChangeEnforcerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    graph_ = Graph::FromText(
        "in :: FromNetfront(); back :: FromNetfront();"
        "enf :: ChangeEnforcer(ALLOW 7.7.7.7, TIMEOUT 60);"
        "to_module :: ToNetfront(); to_world :: ToNetfront();"
        "in -> enf; enf[0] -> to_module;"
        "back -> [1]enf; enf[1] -> to_world;",
        &error, &clock_);
    ASSERT_NE(graph_, nullptr) << error;
  }

  sim::EventQueue clock_;
  std::unique_ptr<Graph> graph_;
};

TEST_F(ChangeEnforcerTest, AllowsWhitelistedDestination) {
  Packet out = Udp("9.9.9.9", "7.7.7.7", 1, 2);
  graph_->Inject("back", out);
  EXPECT_EQ(graph_->FindAs<ToNetfront>("to_world")->packet_count(), 1u);
}

TEST_F(ChangeEnforcerTest, BlocksUnauthorizedDestination) {
  Packet out = Udp("9.9.9.9", "8.8.8.8", 1, 2);
  graph_->Inject("back", out);
  EXPECT_EQ(graph_->FindAs<ToNetfront>("to_world")->packet_count(), 0u);
}

TEST_F(ChangeEnforcerTest, ImplicitAuthorizationFromInbound) {
  Packet in = Udp("8.8.8.8", "172.16.3.10", 1, 2);
  graph_->Inject("in", in);
  EXPECT_EQ(graph_->FindAs<ToNetfront>("to_module")->packet_count(), 1u);
  // Now the module may respond to 8.8.8.8.
  Packet reply = Udp("172.16.3.10", "8.8.8.8", 2, 1);
  graph_->Inject("back", reply);
  EXPECT_EQ(graph_->FindAs<ToNetfront>("to_world")->packet_count(), 1u);
}

TEST_F(ChangeEnforcerTest, AuthorizationExpires) {
  Packet in = Udp("8.8.8.8", "172.16.3.10", 1, 2);
  graph_->Inject("in", in);
  clock_.RunUntil(sim::FromSeconds(61));  // past the 60 s timeout
  Packet reply = Udp("172.16.3.10", "8.8.8.8", 2, 1);
  graph_->Inject("back", reply);
  auto* enf = graph_->FindAs<ChangeEnforcer>("enf");
  EXPECT_EQ(graph_->FindAs<ToNetfront>("to_world")->packet_count(), 0u);
  EXPECT_EQ(enf->blocked_count(), 1u);
}

// --- FlowMeter / RateLimiter ------------------------------------------------------------

TEST(FlowMeter, CountsDistinctFlows) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); fm :: FlowMeter(); sink :: ToNetfront(); src -> fm -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  for (uint16_t port = 0; port < 10; ++port) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1000, static_cast<uint16_t>(5000 + port % 5));
    graph->InjectAtSource(p);
  }
  EXPECT_EQ(graph->FindAs<FlowMeter>("fm")->flow_count(), 5u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 10u);
}

TEST(RateLimiter, DropsAboveRate) {
  sim::EventQueue clock;
  std::string error;
  // 8000 bps = 1000 bytes/s; burst 100 bytes.
  auto graph = Graph::FromText(
      "src :: FromNetfront(); rl :: RateLimiter(8000, 100); sink :: ToNetfront();"
      "src -> rl -> sink;",
      &error, &clock);
  ASSERT_NE(graph, nullptr) << error;
  auto* sink = graph->FindAs<ToNetfront>("sink");
  // Two back-to-back ~52-byte packets fit the burst; the third does not.
  for (int i = 0; i < 3; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2, 10);
    graph->InjectAtSource(p);
  }
  EXPECT_EQ(sink->packet_count(), 1u);  // 52 bytes fits; second (104 total) does not
  clock.RunUntil(sim::FromSeconds(1));  // refill ~1000 bytes (capped at 100)
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2, 10);
  graph->InjectAtSource(p);
  EXPECT_EQ(sink->packet_count(), 2u);
}

// --- ContentMatch (DPI) ------------------------------------------------------------------

TEST(ContentMatch, SplitsOnPayload) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); clean :: ToNetfront(); alert :: ToNetfront();"
      "dpi :: ContentMatch(EVIL);"
      "src -> dpi; dpi[0] -> clean; dpi[1] -> alert;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet bad = Tcp("1.1.1.1", "2.2.2.2", 1, 80);
  bad.SetPayload("xxEVILxx");
  Packet good = Tcp("1.1.1.1", "2.2.2.2", 1, 80);
  good.SetPayload("harmless");
  graph->InjectAtSource(bad);
  graph->InjectAtSource(good);
  EXPECT_EQ(graph->FindAs<ToNetfront>("alert")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("clean")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ContentMatch>("dpi")->match_count(), 1u);
}

// --- Tunnels -------------------------------------------------------------------------------

TEST(UdpTunnel, EncapDecapRoundTrip) {
  std::string error;
  auto graph = Graph::FromText(
      "in :: FromNetfront(); out :: ToNetfront();"
      "in -> UDPTunnelEncap(3.3.3.3, 4.4.4.4, 4789) -> UDPTunnelDecap() -> out;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("out")->set_handler([&](Packet& p) { observed = p; });
  Packet inner = Udp("10.0.0.1", "10.0.0.2", 1111, 2222, 32);
  graph->Inject("in", inner);
  EXPECT_EQ(observed.ip_src(), Ipv4Address::MustParse("10.0.0.1"));
  EXPECT_EQ(observed.ip_dst(), Ipv4Address::MustParse("10.0.0.2"));
  EXPECT_EQ(observed.src_port(), 1111);
  EXPECT_EQ(observed.dst_port(), 2222);
}

TEST(UdpTunnel, DecapDropsNonTunnelTraffic) {
  std::string error;
  auto graph = Graph::FromText(
      "in :: FromNetfront(); out :: ToNetfront(); in -> UDPTunnelDecap() -> out;", &error);
  ASSERT_NE(graph, nullptr);
  Packet tcp = Tcp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->Inject("in", tcp);
  EXPECT_EQ(graph->FindAs<ToNetfront>("out")->packet_count(), 0u);
}

// --- LinearIPLookup --------------------------------------------------------------------------

TEST(LinearIPLookup, LongestPrefixWins) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); a :: ToNetfront(); b :: ToNetfront();"
      "rt :: LinearIPLookup(10.0.0.0/8 0, 10.5.0.0/16 1);"
      "src -> rt; rt[0] -> a; rt[1] -> b;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet to_wide = Udp("1.1.1.1", "10.9.9.9", 1, 2);
  Packet to_narrow = Udp("1.1.1.1", "10.5.1.1", 1, 2);
  Packet unrouted = Udp("1.1.1.1", "8.8.8.8", 1, 2);
  graph->InjectAtSource(to_wide);
  graph->InjectAtSource(to_narrow);
  graph->InjectAtSource(unrouted);
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("b")->packet_count(), 1u);
}

// --- NAT --------------------------------------------------------------------------------------

TEST(NatRewriter, OutboundAndReverseMapping) {
  std::string error;
  auto graph = Graph::FromText(
      "outb :: FromNetfront(); inb :: FromNetfront();"
      "nat :: NatRewriter(PUBLIC 100.64.0.1);"
      "wan :: ToNetfront(); lan :: ToNetfront();"
      "outb -> nat; nat[0] -> wan;"
      "inb -> [1]nat; nat[1] -> lan;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet outward_seen;
  graph->FindAs<ToNetfront>("wan")->set_handler([&](Packet& p) { outward_seen = p; });
  Packet out = Udp("192.168.0.5", "8.8.8.8", 5555, 53);
  graph->Inject("outb", out);
  EXPECT_EQ(outward_seen.ip_src(), Ipv4Address::MustParse("100.64.0.1"));
  uint16_t public_port = outward_seen.src_port();

  Packet inward_seen;
  graph->FindAs<ToNetfront>("lan")->set_handler([&](Packet& p) { inward_seen = p; });
  Packet reply = Udp("8.8.8.8", "100.64.0.1", 53, public_port);
  graph->Inject("inb", reply);
  EXPECT_EQ(inward_seen.ip_dst(), Ipv4Address::MustParse("192.168.0.5"));
  EXPECT_EQ(inward_seen.dst_port(), 5555);
}

TEST(NatRewriter, DropsUnknownInbound) {
  std::string error;
  auto graph = Graph::FromText(
      "inb :: FromNetfront(); nat :: NatRewriter(PUBLIC 100.64.0.1); lan :: ToNetfront();"
      "inb -> [1]nat; nat[1] -> lan;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet stray = Udp("8.8.8.8", "100.64.0.1", 53, 44444);
  graph->Inject("inb", stray);
  EXPECT_EQ(graph->FindAs<ToNetfront>("lan")->packet_count(), 0u);
}

// --- Stock modules ------------------------------------------------------------------------------

TEST(DnsGeoServer, RespondsToRequester) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); dns :: DnsGeoServer(); sink :: ToNetfront();"
      "src -> dns -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("sink")->set_handler([&](Packet& p) { observed = p; });
  Packet query = Udp("9.9.9.9", "172.16.3.10", 5353, 53);
  graph->InjectAtSource(query);
  EXPECT_EQ(observed.ip_dst(), Ipv4Address::MustParse("9.9.9.9"));
  EXPECT_EQ(observed.ip_src(), Ipv4Address::MustParse("172.16.3.10"));
  EXPECT_EQ(observed.src_port(), 53);
  EXPECT_EQ(observed.dst_port(), 5353);
}

TEST(DnsGeoServer, IgnoresNonDns) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); dns :: DnsGeoServer(); sink :: ToNetfront(); src -> dns -> sink;",
      &error);
  ASSERT_NE(graph, nullptr);
  Packet not_dns = Udp("9.9.9.9", "172.16.3.10", 5353, 80);
  graph->InjectAtSource(not_dns);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 0u);
}

TEST(ReverseProxy, HitsGoBackMissesGoToOrigin) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront();"
      "proxy :: ReverseProxy(SELF 172.16.3.10, ORIGIN 5.5.5.5);"
      "back :: ToNetfront(); fetch :: ToNetfront();"
      "src -> proxy; proxy[0] -> back; proxy[1] -> fetch;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  for (int i = 0; i < 100; ++i) {
    Packet req = Tcp("9.9.9.9", "172.16.3.10", 4000, 80);
    graph->InjectAtSource(req);
  }
  auto* back = graph->FindAs<ToNetfront>("back");
  auto* fetch = graph->FindAs<ToNetfront>("fetch");
  EXPECT_EQ(back->packet_count() + fetch->packet_count(), 100u);
  EXPECT_GT(back->packet_count(), fetch->packet_count());  // ~80% hit ratio
  EXPECT_GT(fetch->packet_count(), 0u);
}

}  // namespace
}  // namespace innet::click
