// Tests for the direction-aware bench diffing library behind
// tools/innet_benchdiff and the CI perf-regression gate.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/benchdiff.h"
#include "src/obs/json.h"

namespace innet::obs {
namespace {

json::Value MakeDoc(const std::string& bench, std::vector<BenchSeriesEntry> series) {
  json::Value arr = json::Value::Array();
  for (const BenchSeriesEntry& entry : series) {
    arr.Push(BenchSeriesEntryJson(entry));
  }
  json::Value results = json::Value::Object();
  results.Set("series", std::move(arr));
  json::Value doc = json::Value::Object();
  doc.Set("bench", bench);
  doc.Set("results", std::move(results));
  return doc;
}

BenchSeriesEntry Higher(const std::string& m, double v, double tol) {
  return {m, v, "higher_is_better", tol, "x"};
}
BenchSeriesEntry Lower(const std::string& m, double v, double tol) {
  return {m, v, "lower_is_better", tol, "x"};
}

TEST(BenchDiff, SeriesRoundTripsThroughJson) {
  json::Value doc = MakeDoc("demo", {Higher("rate", 100.0, 5.0), Lower("lat", 2.5, 10.0)});
  std::string bench;
  std::vector<BenchSeriesEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseBenchSeries(doc, &bench, &parsed, &error)) << error;
  EXPECT_EQ(bench, "demo");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].metric, "rate");
  EXPECT_DOUBLE_EQ(parsed[0].value, 100.0);
  EXPECT_EQ(parsed[0].direction, "higher_is_better");
  EXPECT_DOUBLE_EQ(parsed[1].tolerance_pct, 10.0);
  EXPECT_EQ(parsed[1].unit, "x");
}

TEST(BenchDiff, RejectsMalformedDocs) {
  std::string bench;
  std::vector<BenchSeriesEntry> parsed;
  std::string error;
  EXPECT_FALSE(ParseBenchSeries(json::Value::Object(), &bench, &parsed, &error));
  EXPECT_FALSE(ParseBenchSeries(json::Value("text"), &bench, &parsed, &error));

  // Unknown direction.
  json::Value doc = MakeDoc("demo", {{"m", 1.0, "sideways_is_better", 0.0, ""}});
  EXPECT_FALSE(ParseBenchSeries(doc, &bench, &parsed, &error));
  EXPECT_NE(error.find("sideways_is_better"), std::string::npos);

  // Duplicate metric names.
  doc = MakeDoc("demo", {Lower("m", 1.0, 0.0), Lower("m", 2.0, 0.0)});
  EXPECT_FALSE(ParseBenchSeries(doc, &bench, &parsed, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(BenchDiff, IdenticalDumpsHaveNoRegressions) {
  json::Value doc = MakeDoc("demo", {Higher("rate", 100.0, 0.0), Lower("lat", 2.5, 0.0)});
  BenchDiffReport report;
  std::string error;
  ASSERT_TRUE(DiffBenchJson(doc, doc, &report, &error)) << error;
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.entries[0].status, "ok");
  EXPECT_EQ(report.entries[1].status, "ok");
}

TEST(BenchDiff, DirectionDecidesWhichWayRegresses) {
  json::Value base = MakeDoc("demo", {Higher("rate", 100.0, 5.0), Lower("lat", 10.0, 5.0)});
  // Both metrics move UP 20%: rate improves, latency regresses.
  json::Value cand = MakeDoc("demo", {Higher("rate", 120.0, 5.0), Lower("lat", 12.0, 5.0)});
  BenchDiffReport report;
  std::string error;
  ASSERT_TRUE(DiffBenchJson(base, cand, &report, &error)) << error;
  EXPECT_EQ(report.entries[0].status, "improved");
  EXPECT_EQ(report.entries[1].status, "regressed");
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_NEAR(report.entries[1].change_pct, 20.0, 1e-9);
}

TEST(BenchDiff, ToleranceComesFromTheBaseline) {
  json::Value base = MakeDoc("demo", {Lower("lat", 10.0, 5.0)});
  // Candidate claims a huge tolerance; the baseline's 5% gate must win.
  json::Value cand = MakeDoc("demo", {Lower("lat", 12.0, 90.0)});
  BenchDiffReport report;
  std::string error;
  ASSERT_TRUE(DiffBenchJson(base, cand, &report, &error)) << error;
  EXPECT_EQ(report.entries[0].status, "regressed");
  EXPECT_DOUBLE_EQ(report.entries[0].tolerance_pct, 5.0);
}

TEST(BenchDiff, ZeroBaselineCounterFlagsAnyAppearance) {
  json::Value base = MakeDoc("demo", {Lower("giveups", 0.0, 10.0)});
  json::Value cand = MakeDoc("demo", {Lower("giveups", 1.0, 10.0)});
  BenchDiffReport report;
  std::string error;
  ASSERT_TRUE(DiffBenchJson(base, cand, &report, &error)) << error;
  EXPECT_EQ(report.entries[0].status, "regressed");
}

TEST(BenchDiff, MissingMetricRegressesNewMetricDoesNot) {
  json::Value base = MakeDoc("demo", {Lower("a", 1.0, 0.0), Lower("b", 2.0, 0.0)});
  json::Value cand = MakeDoc("demo", {Lower("a", 1.0, 0.0), Lower("c", 3.0, 0.0)});
  BenchDiffReport report;
  std::string error;
  ASSERT_TRUE(DiffBenchJson(base, cand, &report, &error)) << error;
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.entries[1].metric, "b");
  EXPECT_EQ(report.entries[1].status, "missing");
  EXPECT_EQ(report.entries[2].metric, "c");
  EXPECT_EQ(report.entries[2].status, "new");
  EXPECT_EQ(report.regressions, 1u);
}

TEST(BenchDiff, BenchNameMismatchIsAnError) {
  json::Value base = MakeDoc("alpha", {Lower("a", 1.0, 0.0)});
  json::Value cand = MakeDoc("beta", {Lower("a", 1.0, 0.0)});
  BenchDiffReport report;
  std::string error;
  EXPECT_FALSE(DiffBenchJson(base, cand, &report, &error));
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(BenchDiff, ReportJsonCarriesTheVerdict) {
  json::Value base = MakeDoc("demo", {Lower("lat", 10.0, 5.0)});
  json::Value cand = MakeDoc("demo", {Lower("lat", 20.0, 5.0)});
  BenchDiffReport report;
  std::string error;
  ASSERT_TRUE(DiffBenchJson(base, cand, &report, &error)) << error;
  json::Value out = report.ToJson();
  EXPECT_EQ(out.Find("bench")->string_value(), "demo");
  EXPECT_EQ(out.Find("regressions")->int_number(), 1);
  const json::Value* entries = out.Find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->at(0).Find("status")->string_value(), "regressed");
}

}  // namespace
}  // namespace innet::obs
