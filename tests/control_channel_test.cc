// Fault-tolerant control plane: the lossy/partitionable control channel,
// idempotent (tenant, op, epoch) tokens with platform-side dedup, retrying
// orchestrator client, the write-ahead deploy journal, and crash recovery.
// The invariants under test: no duplicate installs under loss/duplication,
// no stranded quota reservations on any failure path, no tenant left
// permanently in-flight, and byte-identical journals across seeded runs.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/click/elements.h"
#include "src/controller/control_channel.h"
#include "src/controller/fleet.h"
#include "src/controller/journal.h"
#include "src/controller/orchestrator.h"
#include "src/obs/metrics.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace innet::controller {
namespace {

using platform::Vm;
using platform::VmState;

ClientRequest MeterRequest(const std::string& client_id, const std::string& client_addr,
                           const std::string& owned_prefix) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = RequesterClass::kClient;
  request.click_config = "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - " +
                         client_addr + " - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse(client_addr)};
  request.owned_prefixes = {Ipv4Prefix::MustParse(owned_prefix)};
  return request;
}

ClientRequest StatelessRequest(const std::string& client_id, uint16_t port) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port " + std::to_string(port) +
      ") -> IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

// Every journal entry either completed (cut over) or terminated cleanly —
// nothing is stuck in flight.
void ExpectJournalConverged(const DeployJournal& journal) {
  EXPECT_EQ(journal.InFlightCount(), 0u);
  for (const JournalEntry& entry : journal.entries()) {
    EXPECT_TRUE(entry.state == JournalState::kCutover ||
                DeployJournal::IsTerminal(entry.state))
        << "entry " << entry.id << " stuck in " << JournalStateName(entry.state);
  }
}

// --- The channel + endpoint primitives -------------------------------------------------

TEST(ControlEndpoint, DedupsByTokenAndBypassesForEpochZero) {
  sim::EventQueue clock;
  ControlChannel channel(&clock);
  int executions = 0;
  channel.RegisterEndpoint("box", [&](const ControlRequest&, RespondFn respond) {
    ++executions;
    ControlResponse response;
    response.ok = true;
    response.vm_id = 7;
    respond(response);
  });

  ControlRequest request;
  request.op = ControlOp::kInstall;
  request.tenant = "t1";
  request.attempt_epoch = 3;
  std::vector<ControlResponse> responses;
  for (int i = 0; i < 3; ++i) {
    channel.Send("box", request, [&](ControlResponse r) { responses.push_back(r); });
  }
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(executions, 1);  // replays answered from the dedup cache
  EXPECT_FALSE(responses[0].duplicate);
  EXPECT_TRUE(responses[1].duplicate);
  EXPECT_TRUE(responses[2].duplicate);
  EXPECT_EQ(responses[2].vm_id, 7u);  // cached payload, not a re-execution

  // A different epoch is a different logical operation.
  request.attempt_epoch = 4;
  channel.Send("box", request, [&](ControlResponse r) { responses.push_back(r); });
  EXPECT_EQ(executions, 2);

  // Epoch 0 marks a non-mutating op: no dedup memory at all.
  request.attempt_epoch = 0;
  channel.Send("box", request, [&](ControlResponse r) { responses.push_back(r); });
  channel.Send("box", request, [&](ControlResponse r) { responses.push_back(r); });
  EXPECT_EQ(executions, 4);
}

TEST(ControlEndpoint, RepliesWhileExecutingQueueAsWaiters) {
  sim::EventQueue clock;
  ControlChannel channel(&clock);
  RespondFn complete;  // captured: the op finishes only when we say so
  channel.RegisterEndpoint("box", [&](const ControlRequest&, RespondFn respond) {
    complete = std::move(respond);
  });
  ControlRequest request;
  request.op = ControlOp::kSuspend;
  request.tenant = "t1";
  request.attempt_epoch = 1;
  int answers = 0;
  channel.Send("box", request, [&](ControlResponse) { ++answers; });
  channel.Send("box", request, [&](ControlResponse) { ++answers; });  // retry mid-execution
  EXPECT_EQ(answers, 0);
  ControlResponse response;
  response.ok = true;
  complete(response);  // the one completion answers both
  EXPECT_EQ(answers, 2);
}

TEST(ControlChannel, PartitionEatsBothLegsSilently) {
  sim::EventQueue clock;
  ControlChannel channel(&clock);
  int executions = 0;
  channel.RegisterEndpoint("box", [&](const ControlRequest&, RespondFn respond) {
    ++executions;
    ControlResponse response;
    response.ok = true;
    respond(response);
  });
  channel.SetPartitioned("box", true);
  EXPECT_FALSE(channel.ideal());
  ControlRequest request;
  request.tenant = "t1";
  request.attempt_epoch = 1;
  bool answered = false;
  channel.Send("box", request, [&](ControlResponse) { answered = true; });
  clock.RunUntil(clock.now() + sim::FromSeconds(5));
  EXPECT_EQ(executions, 0);
  EXPECT_FALSE(answered);
  EXPECT_EQ(channel.partition_dropped(), 1u);
  channel.SetPartitioned("box", false);
  EXPECT_TRUE(channel.ideal());
}

TEST(ControlClient, RetriesThenGivesUpAgainstPartition) {
  sim::EventQueue clock;
  ControlChannel channel(&clock);
  channel.RegisterEndpoint("box", [](const ControlRequest&, RespondFn respond) {
    ControlResponse response;
    response.ok = true;
    respond(response);
  });
  channel.SetPartitioned("box", true);
  ControlRetryPolicy policy;
  policy.max_attempts = 3;
  ControlClient client(&clock, &channel, policy);
  ControlRequest request;
  request.op = ControlOp::kInstall;
  request.tenant = "t1";
  request.attempt_epoch = 1;
  std::optional<ControlResponse> result;
  client.Issue("box", request, [&](ControlResponse r) { result = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(30));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(result->gave_up);
  EXPECT_NE(result->error.find("gave up after 3 attempts"), std::string::npos);
  EXPECT_EQ(client.retries(), 2u);   // attempts 2 and 3
  EXPECT_EQ(client.timeouts(), 3u);  // every attempt timed out
  EXPECT_EQ(client.giveups(), 1u);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(PlatformReplace, DedupMemoryResetLetsPreFailureTokenReexecute) {
  sim::EventQueue clock;
  PlatformFleet fleet(&clock, platform::VmCostModel{},
                      OrchestratorOptions{}.platform_memory_bytes);
  fleet.AddPlatform("box");
  const uint64_t replaced_before =
      obs::Registry().GetCounter("innet_platform_replaced_total")->value();

  ControlRequest install;
  install.op = ControlOp::kInstall;
  install.tenant = "web";
  install.attempt_epoch = 5;
  install.addr = Ipv4Address::MustParse("172.16.10.2");
  install.config_text =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) -> "
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  install.whitelist = {Ipv4Address::MustParse("10.10.0.5")};

  ControlResponse first = fleet.channel().DeliverDirect("box", install);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.duplicate);
  EXPECT_EQ(fleet.Get("box")->vms().vm_count(), 1u);

  // A retry of the same token against the same machine is absorbed.
  ControlResponse replay = fleet.channel().DeliverDirect("box", install);
  EXPECT_TRUE(replay.ok);
  EXPECT_TRUE(replay.duplicate);
  EXPECT_EQ(replay.vm_id, first.vm_id);
  EXPECT_EQ(fleet.Get("box")->vms().vm_count(), 1u);

  // Replace the node: the fresh machine has no dedup memory, so the same
  // pre-failure token re-executes — counted as a fresh install, not silently
  // answered from a cache the replacement cannot have.
  fleet.Replace("box");
  EXPECT_EQ(obs::Registry().GetCounter("innet_platform_replaced_total")->value(),
            replaced_before + 1);
  ControlResponse reexecuted = fleet.channel().DeliverDirect("box", install);
  ASSERT_TRUE(reexecuted.ok) << reexecuted.error;
  EXPECT_FALSE(reexecuted.duplicate);
  EXPECT_EQ(fleet.Get("box")->vms().vm_count(), 1u);  // on the new instance
}

// --- Channel deploys under faults ------------------------------------------------------

TEST(ChannelDeploy, IdealChannelCompletesInline) {
  sim::EventQueue clock;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  std::optional<OrchestratedDeploy> result;
  orch.DeployViaChannel(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"),
                        [&](const OrchestratedDeploy& r) { result = r; });
  // No faults, no partitions: the whole flow ran before the call returned.
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->outcome.accepted) << result->outcome.reason;
  const JournalEntry* entry = orch.journal().Find(result->journal_id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, JournalState::kPlaced);  // confirm chain still pending
  // The confirmation probes walk it to steady state.
  clock.RunUntil(clock.now() + sim::FromSeconds(5));
  EXPECT_EQ(entry->state, JournalState::kCutover);
  ExpectJournalConverged(orch.journal());
}

TEST(ChannelDeploy, LossyChannelConvergesWithNoDuplicateInstall) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.control_loss_p = 0.25;
  plan.control_dup_p = 0.25;
  plan.control_reorder_p = 0.2;
  plan.control_delay_mean_ms = 1.0;
  sim::FaultInjector faults(plan);
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  orch.SetControlFaults(&faults);

  std::optional<OrchestratedDeploy> result;
  orch.DeployViaChannel(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"),
                        [&](const OrchestratedDeploy& r) { result = r; });
  EXPECT_FALSE(result.has_value());  // faulty channel: nothing is synchronous
  clock.RunUntil(clock.now() + sim::FromSeconds(60));

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->outcome.accepted) << result->outcome.reason;
  // Exactly one guest exists, no matter how many times the install was
  // retried or duplicated on the wire.
  EXPECT_EQ(orch.platform(result->outcome.platform)->vms().vm_count(), 1u);
  EXPECT_EQ(orch.placement_count(), 1u);
  EXPECT_EQ(orch.engine().admission().UsageFor("meter").modules, 1u);
  ExpectJournalConverged(orch.journal());
  // The fault plan actually bit: losses and/or duplicates happened, and the
  // duplicates were answered from the dedup cache instead of re-executing.
  EXPECT_GT(orch.channel().dropped() + orch.channel().duplicated(), 0u);
}

TEST(ChannelDeploy, HeavyDuplicationNeverDoublePlaces) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.control_dup_p = 0.9;
  plan.control_delay_mean_ms = 0.5;
  sim::FaultInjector faults(plan);
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  orch.SetControlFaults(&faults);

  std::optional<OrchestratedDeploy> stateful;
  std::optional<OrchestratedDeploy> stateless;
  orch.DeployViaChannel(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"),
                        [&](const OrchestratedDeploy& r) { stateful = r; });
  orch.DeployViaChannel(StatelessRequest("web", 1500),
                        [&](const OrchestratedDeploy& r) { stateless = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(60));

  ASSERT_TRUE(stateful.has_value());
  ASSERT_TRUE(stateless.has_value());
  ASSERT_TRUE(stateful->outcome.accepted) << stateful->outcome.reason;
  ASSERT_TRUE(stateless->outcome.accepted) << stateless->outcome.reason;
  EXPECT_GT(orch.channel().duplicated(), 0u);
  EXPECT_GT(orch.channel().deduped(), 0u);
  // One dedicated guest + one shared VM across the whole fleet, each
  // installed exactly once despite the wire duplicates.
  size_t total_vms = 0;
  for (const std::string& name : orch.fleet().Names()) {
    total_vms += orch.platform(name)->vms().vm_count();
  }
  EXPECT_EQ(total_vms, 2u);
  EXPECT_EQ(orch.ConsolidatedTenantCount(stateless->outcome.platform), 1u);
  ExpectJournalConverged(orch.journal());
}

// --- Crash recovery --------------------------------------------------------------------

// Fleet + journal outlive the orchestrator: destroying it and building a new
// one over the same pair is the simulated controller crash.
class CrashRecovery : public ::testing::Test {
 protected:
  CrashRecovery()
      : fleet_(&clock_, platform::VmCostModel{}, OrchestratorOptions{}.platform_memory_bytes) {}

  sim::EventQueue clock_;
  PlatformFleet fleet_;
  DeployJournal journal_;
};

TEST_F(CrashRecovery, AdoptsLiveTenantsAndFinishesInFlightOnes) {
  std::string live_module;
  std::string inflight_module;
  std::string inflight_platform;
  {
    Orchestrator orch(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                      &fleet_, &journal_);
    // Tenant 1 reaches steady state before the crash.
    auto done = orch.Deploy(MeterRequest("m1", "10.10.0.5", "10.10.0.0/24"));
    ASSERT_TRUE(done.outcome.accepted) << done.outcome.reason;
    live_module = done.outcome.module_id;
    clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
    // Tenant 2 is placed but its confirmation chain has not run when the
    // controller dies.
    std::optional<OrchestratedDeploy> placed;
    orch.DeployViaChannel(MeterRequest("m2", "10.20.0.5", "10.20.0.0/24"),
                          [&](const OrchestratedDeploy& r) { placed = r; });
    ASSERT_TRUE(placed.has_value());
    ASSERT_TRUE(placed->outcome.accepted) << placed->outcome.reason;
    inflight_module = placed->outcome.module_id;
    inflight_platform = placed->outcome.platform;
    EXPECT_EQ(journal_.Find(placed->journal_id)->state, JournalState::kPlaced);
  }  // crash

  Orchestrator successor(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                         &fleet_, &journal_);
  EXPECT_EQ(successor.placement_count(), 0u);  // belief died with the crash
  RecoveryReport report = successor.RecoverFromJournal();
  EXPECT_EQ(report.adopted, 1u);    // the live tenant
  EXPECT_EQ(report.completed, 1u);  // the placed-but-unconfirmed one
  EXPECT_EQ(report.killed, 0u);

  // Belief matches reality again: both tenants, no duplicate guests.
  EXPECT_EQ(successor.placement_count(), 2u);
  EXPECT_TRUE(successor.HasPlacement(live_module));
  EXPECT_TRUE(successor.HasPlacement(inflight_module));
  EXPECT_EQ(successor.engine().admission().UsageFor("m1").modules, 1u);
  EXPECT_EQ(successor.engine().admission().UsageFor("m2").modules, 1u);
  size_t total_vms = 0;
  for (const std::string& name : fleet_.Names()) {
    total_vms += fleet_.Get(name)->vms().vm_count();
  }
  EXPECT_EQ(total_vms, 2u);

  // The re-armed confirmation chain finishes the in-flight entry.
  clock_.RunUntil(clock_.now() + sim::FromSeconds(5));
  ExpectJournalConverged(journal_);
  // A kill through the successor proves the adopted belief is actionable:
  // the guest it believes in is the one that actually disappears.
  const auto* placement = successor.FindPlacement(inflight_module);
  ASSERT_NE(placement, nullptr);
  Vm::VmId inflight_vm = placement->second;
  ASSERT_NE(inflight_vm, 0u);
  EXPECT_TRUE(successor.Kill(inflight_module));
  EXPECT_EQ(fleet_.Get(inflight_platform)->vms().Find(inflight_vm), nullptr);
}

TEST_F(CrashRecovery, ResendsUnackedInstallUnderOriginalToken) {
  std::string module_id;
  std::string platform_name = "platform1";
  uint64_t journal_id = 0;
  {
    Orchestrator orch(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                      &fleet_, &journal_);
    // The platform is cut off, so the install leaves the controller but is
    // never delivered; the entry is stuck at verified when the crash hits.
    orch.SetPartitioned(platform_name, true);
    ClientRequest request = MeterRequest("m1", "10.10.0.5", "10.10.0.0/24");
    request.pinned_platform = platform_name;
    std::optional<OrchestratedDeploy> result;
    orch.DeployViaChannel(request, [&](const OrchestratedDeploy& r) { result = r; });
    EXPECT_FALSE(result.has_value());  // in flight
    const JournalEntry& entry = journal_.entries().back();
    EXPECT_EQ(entry.state, JournalState::kVerified);
    EXPECT_NE(entry.op_epoch, 0u);
    module_id = entry.module_id;
    journal_id = entry.id;
  }  // crash with the op un-acked

  // The partition heals while the controller is down.
  fleet_.channel().SetPartitioned(platform_name, false);

  Orchestrator successor(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                         &fleet_, &journal_);
  RecoveryReport report = successor.RecoverFromJournal();
  EXPECT_EQ(report.resumed, 1u);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(5));

  // The re-sent install (same token) executed exactly once and the entry
  // walked to steady state.
  EXPECT_EQ(fleet_.Get(platform_name)->vms().vm_count(), 1u);
  EXPECT_TRUE(successor.HasPlacement(module_id));
  EXPECT_EQ(journal_.Find(journal_id)->state, JournalState::kCutover);
  ExpectJournalConverged(journal_);
  // The crashed controller's in-flight continuations (still queued on the
  // clock) were defused with it: draining them must not release the
  // successor's freshly-committed quota share.
  EXPECT_EQ(successor.engine().admission().UsageFor("m1").modules, 1u);
}

TEST_F(CrashRecovery, RollsBackIntentAndRePlacesFresh) {
  {
    Orchestrator orch(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                      &fleet_, &journal_);
    // Simulate a crash between the WAL intent write and verification.
    journal_.Begin(JournalEntryKind::kDeploy, MeterRequest("m1", "10.10.0.5", "10.10.0.0/24"),
                   clock_.now());
  }
  Orchestrator successor(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                         &fleet_, &journal_);
  RecoveryReport report = successor.RecoverFromJournal();
  EXPECT_EQ(report.rolled_back, 1u);
  EXPECT_EQ(report.resumed, 1u);  // re-placed from the journaled request
  clock_.RunUntil(clock_.now() + sim::FromSeconds(5));
  EXPECT_EQ(successor.placement_count(), 1u);
  ExpectJournalConverged(journal_);
}

TEST_F(CrashRecovery, ReplayWithPartitionedPlatformConvergesOnHeal) {
  std::string live_module;
  std::string placed_module;
  uint64_t placed_id = 0;
  uint64_t stuck_id = 0;
  ClientRequest stuck_request = MeterRequest("m3", "10.30.0.5", "10.30.0.0/24");
  stuck_request.pinned_platform = "platform1";
  {
    Orchestrator orch(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                      &fleet_, &journal_);
    // m1 reaches steady state before anything goes wrong.
    auto done = orch.Deploy(MeterRequest("m1", "10.10.0.5", "10.10.0.0/24"));
    ASSERT_TRUE(done.outcome.accepted) << done.outcome.reason;
    live_module = done.outcome.module_id;
    clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
    // m2 is placed on platform1 but its confirmation chain never runs.
    ClientRequest placed_request = MeterRequest("m2", "10.20.0.5", "10.20.0.0/24");
    placed_request.pinned_platform = "platform1";
    std::optional<OrchestratedDeploy> placed;
    orch.DeployViaChannel(placed_request, [&](const OrchestratedDeploy& r) { placed = r; });
    ASSERT_TRUE(placed.has_value());
    ASSERT_TRUE(placed->outcome.accepted) << placed->outcome.reason;
    placed_module = placed->outcome.module_id;
    placed_id = placed->journal_id;
    EXPECT_EQ(journal_.Find(placed_id)->state, JournalState::kPlaced);
    // platform1 partitions; m3's install leaves the controller but is never
    // delivered — its entry is stuck at verified when the crash hits.
    orch.SetPartitioned("platform1", true);
    orch.DeployViaChannel(stuck_request, [](const OrchestratedDeploy&) {});
    stuck_id = journal_.entries().back().id;
    EXPECT_EQ(journal_.Find(stuck_id)->state, JournalState::kVerified);
  }  // crash — the partition persists in the fleet's channel

  // Replay runs with the partition still open: reachable state converges
  // immediately, the partitioned remainder finishes at heal.
  Orchestrator successor(topology::Network::MakeFigure3(), &clock_, OrchestratorOptions{},
                         &fleet_, &journal_);
  RecoveryReport report = successor.RecoverFromJournal();
  EXPECT_EQ(report.adopted, 1u);    // m1
  EXPECT_EQ(report.completed, 1u);  // m2: the guest exists, belief rebuilt
  EXPECT_EQ(report.resumed, 1u);    // m3: re-sent under its original token
  EXPECT_EQ(report.killed, 0u);
  EXPECT_EQ(successor.placement_count(), 2u);

  // Against the open partition, m3's re-send retries and gives up (entry
  // rolled back, quota clean); m2's confirm chain parks at placed.
  clock_.RunUntil(clock_.now() + sim::FromSeconds(60));
  EXPECT_EQ(journal_.Find(stuck_id)->state, JournalState::kRolledBack);
  EXPECT_EQ(journal_.Find(placed_id)->state, JournalState::kPlaced);
  EXPECT_EQ(successor.engine().admission().UsageFor("m3").modules, 0u);
  EXPECT_EQ(successor.engine().admission().UsageFor("m2").modules, 1u);

  // Heal: reconcile squares belief with actuality and re-arms the parked
  // confirm chain, which walks m2 to steady state.
  successor.SetPartitioned("platform1", false);
  ReconcileReport heal = successor.ReconcilePlatform("platform1");
  EXPECT_EQ(heal.lost, 0u);
  EXPECT_GE(heal.rearmed, 1u);
  clock_.RunUntil(clock_.now() + sim::FromSeconds(5));
  EXPECT_EQ(journal_.Find(placed_id)->state, JournalState::kCutover);
  EXPECT_TRUE(successor.HasPlacement(placed_module));

  // The rolled-back tenant can be re-deployed now that the platform is back.
  auto redo = successor.Deploy(stuck_request);
  EXPECT_TRUE(redo.outcome.accepted) << redo.outcome.reason;
  clock_.RunUntil(clock_.now() + sim::FromSeconds(5));
  ExpectJournalConverged(journal_);
}

// --- Partitions ------------------------------------------------------------------------

TEST(Partition, DegradedPlatformKeepsServingAndHealReconciles) {
  sim::EventQueue clock;
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  auto deployed = orch.Deploy(MeterRequest("meter", "10.10.0.5", "10.10.0.0/24"));
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  clock.RunUntil(clock.now() + sim::FromSeconds(1));  // guest boots
  const std::string name = deployed.outcome.platform;

  orch.SetPartitioned(name, true);

  // Data plane unaffected: the watchdog and demux are local to the platform.
  int egress = 0;
  orch.platform(name)->SetEgressHandler([&](Packet&) { ++egress; });
  Packet packet = Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                                  deployed.outcome.module_addr, 4000, 53, 64);
  orch.platform(name)->HandlePacket(packet);
  EXPECT_EQ(egress, 1);

  // Control plane cut: a deploy pinned to the partitioned platform retries,
  // gives up, and rolls back without stranding its quota reservation.
  ClientRequest blocked = MeterRequest("blocked", "10.20.0.5", "10.20.0.0/24");
  blocked.pinned_platform = name;
  std::optional<OrchestratedDeploy> result;
  orch.DeployViaChannel(blocked, [&](const OrchestratedDeploy& r) { result = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(60));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->outcome.accepted);
  EXPECT_NE(result->outcome.reason.find("gave up"), std::string::npos);
  EXPECT_EQ(orch.engine().admission().UsageFor("blocked").modules, 0u);
  EXPECT_GT(orch.channel().partition_dropped(), 0u);
  ExpectJournalConverged(orch.journal());

  // Heal: belief and actuality reconcile — the surviving tenant checks out.
  orch.SetPartitioned(name, false);
  ReconcileReport heal = orch.ReconcilePlatform(name);
  EXPECT_EQ(heal.checked, 1u);
  EXPECT_EQ(heal.healthy, 1u);
  EXPECT_EQ(heal.lost, 0u);
  EXPECT_TRUE(orch.HasPlacement(deployed.outcome.module_id));
  EXPECT_EQ(orch.platform(name)->vms().vm_count(), 1u);
}

// --- Determinism -----------------------------------------------------------------------

// Same seed, same scenario: the journal (every transition, every note, every
// simulated timestamp) must be byte-identical across two fresh runs.
std::string RunSeededChaosScenario(uint64_t seed) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.control_loss_p = 0.3;
  plan.control_dup_p = 0.2;
  plan.control_delay_mean_ms = 2.0;
  sim::FaultInjector faults(plan);
  Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  orch.SetControlFaults(&faults);
  orch.DeployViaChannel(MeterRequest("m1", "10.10.0.5", "10.10.0.0/24"));
  orch.DeployViaChannel(StatelessRequest("web", 1500));
  clock.RunUntil(clock.now() + sim::FromSeconds(30));
  orch.SetPartitioned("platform1", true);
  orch.DeployViaChannel(StatelessRequest("web2", 1501));
  clock.RunUntil(clock.now() + sim::FromSeconds(30));
  orch.SetPartitioned("platform1", false);
  clock.RunUntil(clock.now() + sim::FromSeconds(30));
  return orch.journal().ToJson().ToString(2) + "\n" +
         std::to_string(orch.channel().sent()) + "/" +
         std::to_string(orch.channel().dropped()) + "/" +
         std::to_string(orch.channel().duplicated());
}

TEST(Determinism, SameSeedSameJournalByteForByte) {
  std::string first = RunSeededChaosScenario(1234);
  std::string second = RunSeededChaosScenario(1234);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, RunSeededChaosScenario(99));  // the seed actually matters
}

}  // namespace
}  // namespace innet::controller
