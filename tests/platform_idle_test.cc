// Idle suspend/resume management (§5): the platform parks stateful guests
// that see no traffic and resumes them transparently when packets arrive,
// preserving per-flow state across the cycle.
#include <gtest/gtest.h>

#include "src/click/elements.h"
#include "src/platform/platform.h"

namespace innet::platform {
namespace {

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         32);
}

class IdleSuspend : public ::testing::Test {
 protected:
  IdleSuspend() : platform_(&clock_) {
    std::string error;
    addr_ = Ipv4Address::MustParse("172.16.3.10");
    vm_id_ = platform_.Install(addr_, "FromNetfront() -> FlowMeter() -> ToNetfront();",
                               &error);
    EXPECT_NE(vm_id_, 0u) << error;
    platform_.SetEgressHandler([this](Packet&) { ++egressed_; });
    clock_.RunUntil(sim::FromMillis(100));  // boot
    platform_.EnableIdleSuspend(sim::FromSeconds(10));
  }

  void Send(uint16_t dport = 80) {
    Packet p = Udp("9.9.9.9", "172.16.3.10", 5000, dport);
    platform_.HandlePacket(p);
  }

  sim::EventQueue clock_;
  InNetPlatform platform_;
  Ipv4Address addr_;
  Vm::VmId vm_id_ = 0;
  int egressed_ = 0;
};

TEST_F(IdleSuspend, SuspendsAfterIdleTimeout) {
  Send();
  EXPECT_EQ(egressed_, 1);
  clock_.RunUntil(sim::FromSeconds(30));  // idle >> timeout
  EXPECT_EQ(platform_.suspended_count(), 1u);
  EXPECT_GE(platform_.idle_suspends(), 1u);
}

TEST_F(IdleSuspend, ActiveVmStaysRunning) {
  // Traffic every 2 s keeps the guest under the 10 s idle threshold.
  for (int i = 0; i < 20; ++i) {
    clock_.RunUntil(sim::FromSeconds(2 * (i + 1)));
    Send();
  }
  EXPECT_EQ(platform_.suspended_count(), 0u);
  EXPECT_EQ(platform_.idle_suspends(), 0u);
  EXPECT_EQ(egressed_, 20);
}

TEST_F(IdleSuspend, TrafficResumesSuspendedVm) {
  clock_.RunUntil(sim::FromSeconds(30));
  ASSERT_EQ(platform_.suspended_count(), 1u);

  Send();  // arrives at a suspended guest
  EXPECT_EQ(egressed_, 0);  // buffered while resuming (~100 ms)
  clock_.RunUntil(sim::FromSeconds(31));
  EXPECT_EQ(egressed_, 1);
  EXPECT_EQ(platform_.resumes_on_traffic(), 1u);
  EXPECT_EQ(platform_.suspended_count(), 0u);
}

TEST_F(IdleSuspend, BurstDuringResumeAllDelivered) {
  clock_.RunUntil(sim::FromSeconds(30));
  ASSERT_EQ(platform_.suspended_count(), 1u);
  for (int i = 0; i < 5; ++i) {
    Send(static_cast<uint16_t>(80 + i));
  }
  clock_.RunUntil(sim::FromSeconds(31));
  EXPECT_EQ(egressed_, 5);
  EXPECT_EQ(platform_.resumes_on_traffic(), 1u);  // one resume serves the burst
}

TEST_F(IdleSuspend, FlowStateSurvivesSuspendResume) {
  // Per-flow state (the FlowMeter's table) must persist across the cycle —
  // the whole point of suspend/resume over destroy/boot (§5).
  Send(80);
  Send(81);
  Vm* vm = platform_.vms().Find(vm_id_);
  auto* meter = vm->graph()->FindByClass("FlowMeter");
  ASSERT_NE(meter, nullptr);
  EXPECT_EQ(dynamic_cast<click::FlowMeter*>(meter)->flow_count(), 2u);

  clock_.RunUntil(sim::FromSeconds(30));  // suspend
  ASSERT_EQ(platform_.suspended_count(), 1u);
  Send(82);                               // resume + new flow
  clock_.RunUntil(sim::FromSeconds(31));
  EXPECT_EQ(dynamic_cast<click::FlowMeter*>(meter)->flow_count(), 3u);
}

TEST_F(IdleSuspend, SuspendedVmCyclesRepeatedly) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    clock_.RunUntil(clock_.now() + sim::FromSeconds(30));
    ASSERT_EQ(platform_.suspended_count(), 1u) << "cycle " << cycle;
    Send();
    clock_.RunUntil(clock_.now() + sim::FromSeconds(1));
    EXPECT_EQ(platform_.suspended_count(), 0u) << "cycle " << cycle;
  }
  EXPECT_EQ(egressed_, 3);
  EXPECT_GE(platform_.idle_suspends(), 3u);
}

TEST(IdleSuspendMany, ParksAFleetOfIdleTenants) {
  // 50 installed tenants, only 5 active: the other 45 end up suspended — the
  // §5 scaling story for stateful processing.
  sim::EventQueue clock;
  InNetPlatform platform(&clock, VmCostModel{}, 8ull << 30);
  std::string error;
  for (int i = 0; i < 50; ++i) {
    Ipv4Address addr(Ipv4Address::MustParse("172.16.3.10").value() +
                     static_cast<uint32_t>(i));
    ASSERT_NE(platform.Install(addr, "FromNetfront() -> FlowMeter() -> ToNetfront();",
                               &error),
              0u)
        << error;
  }
  clock.RunUntil(sim::FromSeconds(2));  // boots
  platform.EnableIdleSuspend(sim::FromSeconds(10));

  // Keep tenants 0..4 active for a minute.
  for (int t = 0; t < 60; t += 2) {
    clock.ScheduleAt(sim::FromSeconds(2 + t), [&platform] {
      for (int i = 0; i < 5; ++i) {
        Packet p = Packet::MakeUdp(
            Ipv4Address::MustParse("9.9.9.9"),
            Ipv4Address(Ipv4Address::MustParse("172.16.3.10").value() +
                        static_cast<uint32_t>(i)),
            5000, 80, 32);
        platform.HandlePacket(p);
      }
    });
  }
  clock.RunUntil(sim::FromSeconds(60));
  EXPECT_EQ(platform.suspended_count(), 45u);
}

}  // namespace
}  // namespace innet::platform
