#!/usr/bin/env bash
# Perf-regression gate: regenerate every bench that has a committed
# BENCH_*.json baseline at the repo root, then diff the fresh run's headline
# `series` section against the baseline with innet_benchdiff (direction-aware
# per-metric tolerances; see src/obs/benchdiff.h).
#
# The benches only put sim-clock-derived, seeded-deterministic values in
# their series, so any diff here is a behavior change: more retries under the
# same fault seed, a worse placement outcome, extra symexec steps. If the
# change is intentional, refresh the baseline:
#
#   cp <workdir>/BENCH_<name>.json .   (the failing diff prints the path)
#
# Usage: scripts/check_bench_regression.sh [BENCH_NAME ...]
#   With no arguments, gates every known bench. Exit 1 on any regression or
#   missing artifact.
set -u
cd "$(dirname "$0")/.."

benches=(placement_scaling fig10_controller_scaling control_chaos dataplane_profile int_conformance federation_failover)
if [ "$#" -gt 0 ]; then
  benches=("$@")
fi

if [ ! -x build/tools/innet_benchdiff ]; then
  echo "ERROR: build/tools/innet_benchdiff missing — build the tree first" >&2
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail=0
for name in "${benches[@]}"; do
  baseline="BENCH_${name}.json"
  binary="build/bench/${name}"
  if [ ! -f "$baseline" ]; then
    echo "ERROR: no committed baseline $baseline" >&2
    fail=1
    continue
  fi
  if [ ! -x "$binary" ]; then
    echo "ERROR: $binary missing — build the tree first" >&2
    fail=1
    continue
  fi
  echo "== $name =="
  if ! (cd "$workdir" && "$OLDPWD/$binary" >/dev/null); then
    echo "ERROR: $binary exited non-zero" >&2
    fail=1
    continue
  fi
  candidate="$workdir/BENCH_${name}.json"
  # Benches that promise side artifacts must actually produce them — a bench
  # that silently stopped writing its fleet dump would otherwise pass the
  # series diff while breaking the innet_top --fleet pipeline.
  if [ "$name" = "federation_failover" ] && [ ! -s "$workdir/BENCH_federation_failover_fleet.json" ]; then
    echo "ERROR: $name did not write BENCH_federation_failover_fleet.json" >&2
    fail=1
    continue
  fi
  if ./build/tools/innet_benchdiff "$baseline" "$candidate"; then
    echo "ok: $name matches its committed baseline"
  else
    status=$?
    if [ "$status" -eq 1 ]; then
      echo "ERROR: $name regressed against $baseline" >&2
      echo "       (intentional change? refresh with: cp $candidate .)" >&2
    else
      echo "ERROR: innet_benchdiff could not compare $name (exit $status)" >&2
    fi
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_bench_regression: FAILED" >&2
  exit 1
fi
echo "check_bench_regression: all benches match their committed baselines"
