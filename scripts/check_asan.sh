#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the test suite plus the control-plane chaos bench. The fault-injection
# tests (watchdog_test, failure_test, control_channel_test) exercise
# crash/restart races, so a clean run here is the "zero use-after-destroy"
# acceptance check for the failure model; the chaos bench adds the
# lossy-channel + controller-crash recovery paths, whose stale-continuation
# teardown is exactly where a dangling quota guard would fire.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-asan"

cmake -B "${BUILD}" -S "${ROOT}" -DINNET_SANITIZE=ON "$@"
cmake --build "${BUILD}" -j "$(nproc)"
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"
# ctest already ran bench_control_chaos as a fixture; run it once more
# directly so a filtered ctest invocation can never silently skip it.
(cd "${BUILD}/bench" && ./control_chaos >/dev/null)
# Same for the federation failover bench: rolling partitions + heal-time
# reconciles are dense in scheduled continuations that must not outlive
# their coordinator/region objects. It must also emit its fleet
# observability dump — tracing + fleet aggregation run inside this bench,
# so a missing artifact means that code path silently died.
(cd "${BUILD}/bench" && ./federation_failover >/dev/null)
[ -s "${BUILD}/bench/BENCH_federation_failover_fleet.json" ] || {
  echo "check_asan: federation_failover did not write its fleet dump" >&2
  exit 1
}
# And the INT conformance bench: packets carrying in-band hop stacks survive
# queueing and deferred TimedUnqueue releases, so a stale-postcard completion
# after graph mutation/teardown is exactly an ASan-shaped bug.
(cd "${BUILD}/bench" && ./int_conformance >/dev/null)
echo "check_asan: control_chaos + federation_failover + int_conformance clean under ASan+UBSan"
