#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the test suite. The fault-injection tests (watchdog_test, failure_test)
# exercise crash/restart races, so a clean run here is the "zero
# use-after-destroy" acceptance check for the failure model.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-asan"

cmake -B "${BUILD}" -S "${ROOT}" -DINNET_SANITIZE=ON "$@"
cmake --build "${BUILD}" -j "$(nproc)"
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"
