#!/usr/bin/env bash
# Lint: every metric name registered anywhere in src/, tools/, or bench/ must
# be documented in DESIGN.md (§8 Observability). Metric names are string
# literals matching "innet_[a-z0-9_]+" passed to GetCounter/GetGauge/
# GetHistogram; grepping for the quoted literal keeps identifiers like
# innet_run out of the net.
#
# The same applies to trace event wire names: every EventKind name returned
# by EventKindName() in src/obs/trace.cc must appear in DESIGN.md, so the
# trace dump format stays documented.
#
# Finally, every EventKind enumerator declared in src/obs/trace.h must map to
# a wire name in EventKindName(): an unmapped kind serializes as "unknown",
# which would silently corrupt trace dumps and flight-recorder postmortem
# bundles (both reuse the same wire names).
#
# Both directions are linted: code→docs (a registered metric missing from
# DESIGN.md) above, and docs→code (a documented `innet_*` metric no longer
# registered anywhere — a stale row that would send an operator hunting for a
# counter that does not exist) below.
set -u
cd "$(dirname "$0")/.."

missing=0
while IFS= read -r name; do
  if ! grep -q "$name" DESIGN.md; then
    echo "ERROR: metric $name is registered in code but not documented in DESIGN.md" >&2
    missing=1
  fi
done < <(grep -rhoE '"innet_[a-z0-9_]+"' src tools bench | tr -d '"' | sort -u)

# Reverse direction: every backticked innet_* name DESIGN.md documents as a
# metric must still be registered in code. Tool binaries share the prefix, so
# they are allowlisted by name.
tool_names='^innet_(run|top|check|benchdiff)$'
while IFS= read -r name; do
  if echo "$name" | grep -qE "$tool_names"; then
    continue
  fi
  if ! grep -rqF "\"$name\"" src tools bench; then
    echo "ERROR: metric $name is documented in DESIGN.md but registered nowhere in code" >&2
    missing=1
  fi
done < <(grep -ohE '`innet_[a-z0-9_]+' DESIGN.md | tr -d '\`' | sort -u)

while IFS= read -r kind; do
  if ! grep -q "\`$kind\`" DESIGN.md; then
    echo "ERROR: trace event kind $kind is emitted by the tracer but not documented in DESIGN.md" >&2
    missing=1
  fi
done < <(grep -hoE 'return "[a-z0-9_]+"' src/obs/trace.cc | sed 's/return "\(.*\)"/\1/' \
         | grep -v '^unknown$' | sort -u)

# Every EventKind enumerator must have a case in EventKindName() — the wire
# names themselves are already checked against DESIGN.md above; this catches
# a newly added kind that would fall through to "unknown".
while IFS= read -r enumerator; do
  if ! grep -q "EventKind::$enumerator:" src/obs/trace.cc; then
    echo "ERROR: EventKind::$enumerator has no wire name case in EventKindName()" >&2
    missing=1
  fi
done < <(sed -n '/enum class EventKind/,/};/p' src/obs/trace.h \
         | grep -oE 'k[A-Z][A-Za-z0-9]*' | sort -u)

if [ "$missing" -ne 0 ]; then
  echo "check_metrics_docs: FAILED — add the metrics/event kinds above to DESIGN.md §8" >&2
  exit 1
fi
echo "check_metrics_docs: all registered metrics and trace event kinds are documented"
