#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every paper
# table/figure plus the ablations, recording the outputs at the repo root.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then "$b"; fi
done 2>&1 | tee bench_output.txt
