#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every paper
# table/figure plus the ablations, recording the outputs at the repo root.
# Fails if any converted bench did not emit valid BENCH_<name>.json telemetry.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then "$b"; fi
done 2>&1 | tee bench_output.txt

# Telemetry acceptance: these benches must emit parseable JSON.
expected_bench_json="BENCH_fig05_boot_rtt.json BENCH_fig10_controller_scaling.json BENCH_placement_scaling.json BENCH_recovery_under_faults.json"
fail=0
for f in $expected_bench_json; do
  if [ ! -f "$f" ]; then
    echo "ERROR: missing bench telemetry $f" >&2
    fail=1
  elif ! ./build/tools/json_lint "$f"; then
    echo "ERROR: malformed bench telemetry $f" >&2
    fail=1
  fi
done
# Any other BENCH_*.json that appeared must be well-formed too.
for f in BENCH_*.json; do
  [ -f "$f" ] || continue
  case " $expected_bench_json " in *" $f "*) continue ;; esac
  if ! ./build/tools/json_lint "$f"; then
    echo "ERROR: malformed bench telemetry $f" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "regenerate_results: bench telemetry check FAILED" >&2
  exit 1
fi
echo "regenerate_results: bench telemetry check passed"
