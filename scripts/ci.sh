#!/usr/bin/env bash
# One-stop CI gate: tier-1 build + tests, the sanitizer suite, the
# metrics-documentation lint, the perf-regression gate (innet_benchdiff vs
# the committed BENCH_*.json baselines), the timeseries determinism check,
# and a JSON lint over every committed BENCH_*.json telemetry file. Any
# failure fails the whole run.
#
# Usage: scripts/ci.sh [--skip-asan]
#   --skip-asan   skip the (slow) AddressSanitizer build + test pass
set -u
cd "$(dirname "$0")/.."

skip_asan=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) skip_asan=1 ;;
    *) echo "ci.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

fail=0
step() {
  echo
  echo "==== ci: $1 ===="
}

step "tier-1 build"
cmake -B build -S . || fail=1
cmake --build build -j "$(nproc)" || fail=1

step "tier-1 tests"
ctest --test-dir build --output-on-failure -j "$(nproc)" || fail=1

if [ "$skip_asan" -eq 0 ]; then
  step "sanitizer suite (check_asan.sh)"
  scripts/check_asan.sh || fail=1
else
  step "sanitizer suite skipped (--skip-asan)"
fi

step "metrics documentation lint (check_metrics_docs.sh)"
scripts/check_metrics_docs.sh || fail=1

step "perf-regression diff tool self-test (innet_benchdiff --self-test)"
if [ ! -x build/tools/innet_benchdiff ]; then
  echo "ERROR: build/tools/innet_benchdiff missing — build step failed?" >&2
  fail=1
else
  ./build/tools/innet_benchdiff --self-test || fail=1
fi

step "perf-regression gate (check_bench_regression.sh vs committed baselines)"
scripts/check_bench_regression.sh || fail=1

step "timeseries determinism (two seeded innet_run dumps must be byte-identical)"
if [ ! -x build/tools/innet_run ]; then
  echo "ERROR: build/tools/innet_run missing — build step failed?" >&2
  fail=1
else
  ts_ok=1
  ./build/tools/innet_run --config examples/batcher.click \
      --timeseries-out build/ts_run1.json >/dev/null || ts_ok=0
  ./build/tools/innet_run --config examples/batcher.click \
      --timeseries-out build/ts_run2.json >/dev/null || ts_ok=0
  if [ "$ts_ok" -ne 1 ]; then
    echo "ERROR: innet_run --timeseries-out failed" >&2
    fail=1
  elif ! cmp -s build/ts_run1.json build/ts_run2.json; then
    echo "ERROR: timeseries dumps differ between two runs of the same config" >&2
    fail=1
  else
    echo "ok: timeseries dump byte-identical across repeat runs"
  fi
fi

step "bench telemetry lint (json_lint over committed BENCH_*.json)"
if [ ! -x build/tools/json_lint ]; then
  echo "ERROR: build/tools/json_lint missing — build step failed?" >&2
  fail=1
else
  found=0
  for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    found=1
    if ./build/tools/json_lint "$f"; then
      echo "ok: $f"
    else
      echo "ERROR: malformed bench telemetry $f" >&2
      fail=1
    fi
  done
  if [ "$found" -eq 0 ]; then
    echo "ERROR: no committed BENCH_*.json found at the repo root" >&2
    fail=1
  fi
fi

step "inspector smoke test (innet_top over a committed bench snapshot)"
if [ ! -x build/tools/innet_top ]; then
  echo "ERROR: build/tools/innet_top missing — build step failed?" >&2
  fail=1
elif ./build/tools/innet_top --metrics BENCH_placement_scaling.json; then
  echo "ok: innet_top rendered BENCH_placement_scaling.json"
else
  echo "ERROR: innet_top failed on BENCH_placement_scaling.json" >&2
  fail=1
fi

step "dataplane profiling pipeline (bench + innet_top --postmortem)"
if [ ! -x build/bench/dataplane_profile ] || [ ! -x build/tools/innet_top ]; then
  echo "ERROR: build/bench/dataplane_profile or build/tools/innet_top missing — build step failed?" >&2
  fail=1
elif (cd build/bench && ./dataplane_profile >/dev/null) \
    && ./build/tools/innet_top --postmortem build/bench/BENCH_dataplane_profile_postmortem.json; then
  echo "ok: dataplane_profile produced a postmortem bundle and innet_top rendered it"
else
  echo "ERROR: dataplane profiling pipeline failed" >&2
  fail=1
fi

step "control-plane chaos bench (determinism: two runs must be byte-identical)"
if [ ! -x build/bench/control_chaos ]; then
  echo "ERROR: build/bench/control_chaos missing — build step failed?" >&2
  fail=1
else
  chaos_ok=1
  (cd build/bench && ./control_chaos >/dev/null) || chaos_ok=0
  cp build/bench/BENCH_control_chaos.json build/bench/BENCH_control_chaos.run1.json 2>/dev/null
  (cd build/bench && ./control_chaos >/dev/null) || chaos_ok=0
  if [ "$chaos_ok" -ne 1 ]; then
    echo "ERROR: control_chaos reported a convergence failure" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_control_chaos.json build/bench/BENCH_control_chaos.run1.json; then
    echo "ERROR: BENCH_control_chaos.json differs between two runs at the same seed" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_control_chaos.json BENCH_control_chaos.json; then
    echo "ERROR: regenerated BENCH_control_chaos.json differs from the committed snapshot" >&2
    echo "       (if the change is intentional: cp build/bench/BENCH_control_chaos.json .)" >&2
    fail=1
  else
    echo "ok: control_chaos converged, byte-identical across runs, snapshot current"
  fi
fi

step "INT conformance bench (determinism: two runs must be byte-identical)"
if [ ! -x build/bench/int_conformance ]; then
  echo "ERROR: build/bench/int_conformance missing — build step failed?" >&2
  fail=1
else
  int_ok=1
  (cd build/bench && ./int_conformance >/dev/null) || int_ok=0
  cp build/bench/BENCH_int_conformance.json build/bench/BENCH_int_conformance.run1.json 2>/dev/null
  (cd build/bench && ./int_conformance >/dev/null) || int_ok=0
  if [ "$int_ok" -ne 1 ]; then
    echo "ERROR: int_conformance reported an attestation failure" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_int_conformance.json build/bench/BENCH_int_conformance.run1.json; then
    echo "ERROR: BENCH_int_conformance.json differs between two runs at the same seed" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_int_conformance.json BENCH_int_conformance.json; then
    echo "ERROR: regenerated BENCH_int_conformance.json differs from the committed snapshot" >&2
    echo "       (if the change is intentional: cp build/bench/BENCH_int_conformance.json .)" >&2
    fail=1
  else
    echo "ok: int_conformance attested clean/violated phases, byte-identical across runs, snapshot current"
  fi
fi

step "federation failover bench (determinism: two runs must be byte-identical)"
if [ ! -x build/bench/federation_failover ]; then
  echo "ERROR: build/bench/federation_failover missing — build step failed?" >&2
  fail=1
else
  fed_ok=1
  (cd build/bench && ./federation_failover >/dev/null) || fed_ok=0
  cp build/bench/BENCH_federation_failover.json build/bench/BENCH_federation_failover.run1.json 2>/dev/null
  cp build/bench/BENCH_federation_failover_fleet.json build/bench/BENCH_federation_failover_fleet.run1.json 2>/dev/null
  (cd build/bench && ./federation_failover >/dev/null) || fed_ok=0
  if [ "$fed_ok" -ne 1 ]; then
    echo "ERROR: federation_failover reported a convergence failure" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_federation_failover.json build/bench/BENCH_federation_failover.run1.json; then
    echo "ERROR: BENCH_federation_failover.json differs between two runs at the same seed" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_federation_failover_fleet.json build/bench/BENCH_federation_failover_fleet.run1.json; then
    echo "ERROR: BENCH_federation_failover_fleet.json (fleet observability dump) differs between two runs at the same seed" >&2
    fail=1
  elif ! cmp -s build/bench/BENCH_federation_failover.json BENCH_federation_failover.json; then
    echo "ERROR: regenerated BENCH_federation_failover.json differs from the committed snapshot" >&2
    echo "       (if the change is intentional: cp build/bench/BENCH_federation_failover.json .)" >&2
    fail=1
  else
    echo "ok: federation_failover converged, byte-identical across runs (snapshot + fleet dump), snapshot current"
  fi
fi

echo
if [ "$fail" -ne 0 ]; then
  echo "ci: FAILED" >&2
  exit 1
fi
echo "ci: all checks passed"
