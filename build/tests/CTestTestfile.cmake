# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netcore_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
include("/root/repo/build/tests/symexec_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/energy_trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/click_switching_test[1]_include.cmake")
include("/root/repo/build/tests/platform_idle_test[1]_include.cmake")
include("/root/repo/build/tests/watchdog_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/figure2_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
