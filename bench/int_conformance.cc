// In-band telemetry + path-conformance attestation, end to end.
//
// Phase 1 (clean): a full orchestrated deploy registers the tenant's
// verify-time path digest with the INT collector; a steady packet drip with
// every walk INT-tagged must produce zero conformance violations — the data
// plane walks exactly the element sequences SymNet explored at verify time.
//
// Phase 2 (mutated): mid-run, the live guest graph is rewired so the filter
// bypasses the rewriter — the kind of silent data-plane divergence (bad
// config push, memory corruption, compromised guest) attestation exists to
// catch. Every delivered packet now follows a chain the digest has no full
// path for: the bench asserts violations are counted, the path_violation
// trace events fire, and the tenant's health state leaves kOk — all within
// one time-series sampling window of the mutation.
//
// Emits BENCH_int_conformance.json: clean/violation phase counters, per-hop
// latency series for the regression gate, the collector dump, the health
// report, and the windowed time series. Byte-deterministic: everything rides
// the sim clock.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/controller/orchestrator.h"
#include "src/obs/health.h"
#include "src/obs/int_telemetry.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

constexpr uint64_t kSeed = 11;
constexpr uint32_t kIntSampleN = 2;  // attest every other walk
constexpr double kTrafficStartSec = 3.0;
constexpr double kMutateSec = 6.0;
constexpr double kHorizonSec = 9.0;
constexpr uint64_t kWindowNs = 500'000'000;  // 500 ms sampling window

// The Queue keeps occupancy state, so the deploy lands on a dedicated guest
// whose graph the bench can reach and mutate.
constexpr const char* kConfig =
    "FromNetfront() -> filter :: IPFilter(allow udp) -> "
    "rewriter :: IPRewriter(pattern - - 10.0.9.1 - 0 0) -> q :: Queue(64) -> ToNetfront();";

}  // namespace

int main() {
  sim::EventQueue clock;
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });
  obs::Health().Enable();
  obs::Int().Enable();

  obs::TimeSeriesSampler sampler;
  sampler.set_window_ns(kWindowNs);

  bench::PrintHeader("INT path-conformance attestation: clean phase, then a mid-run rewire");

  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  controller::ClientRequest request;
  request.client_id = "intbench";
  request.requester = controller::RequesterClass::kOperator;
  request.click_config = kConfig;
  controller::OrchestratedDeploy deployed = orch.Deploy(request);
  if (!deployed.outcome.accepted) {
    std::fprintf(stderr, "deploy rejected: %s\n", deployed.outcome.reason.c_str());
    return 1;
  }
  if (deployed.consolidated) {
    std::fprintf(stderr, "expected a dedicated guest (stateful config), got consolidated\n");
    return 1;
  }
  if (!obs::Int().HasTenantDigest(request.client_id)) {
    std::fprintf(stderr, "deploy did not register a path digest for %s\n",
                 request.client_id.c_str());
    return 1;
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(2));

  platform::InNetPlatform* box = orch.platform(deployed.outcome.platform);
  box->EnableDataplaneProfiling(/*sample_n=*/0, kSeed, kIntSampleN);
  std::printf("deployed %s on %s (vm %llu), digest registered, INT 1/%u\n",
              deployed.outcome.module_id.c_str(), deployed.outcome.platform.c_str(),
              static_cast<unsigned long long>(deployed.vm_id), kIntSampleN);

  // Steady drip, 1 packet/ms, from traffic start to the horizon. The walk
  // parity (and with it which packets carry INT state) is fixed by the seed.
  const int packets = static_cast<int>((kHorizonSec - kTrafficStartSec) * 1000);
  Ipv4Address module_addr = deployed.outcome.module_addr;
  for (int tick = 0; tick < packets; ++tick) {
    clock.ScheduleAt(sim::FromSeconds(kTrafficStartSec) + sim::FromMillis(tick),
                     [&box, module_addr, tick] {
                       Packet p = Packet::MakeUdp(Ipv4Address::MustParse("9.9.9.9"), module_addr,
                                                  static_cast<uint16_t>(7000 + tick % 64), 80, 64);
                       box->HandlePacket(p);
                     });
  }

  // Sampler tick riding the sim clock, as in innet_run.
  std::function<void()> schedule_window = [&] {
    clock.ScheduleAfter(sampler.window_ns(), [&] {
      sampler.SampleWindow(clock.now());
      schedule_window();
    });
  };
  schedule_window();

  // --- Phase 1: clean ---------------------------------------------------------------
  clock.RunUntil(sim::FromSeconds(kMutateSec));
  uint64_t clean_postcards = obs::Int().postcards();
  uint64_t clean_violations = obs::Int().violations();
  std::printf("clean phase:    %llu postcards, %llu violations\n",
              static_cast<unsigned long long>(clean_postcards),
              static_cast<unsigned long long>(clean_violations));
  if (clean_postcards == 0) {
    std::fprintf(stderr, "clean phase produced no postcards — INT sampling is dead\n");
    return 1;
  }
  if (clean_violations != 0) {
    std::fprintf(stderr, "clean phase must be violation-free (false positives)\n");
    return 1;
  }

  // --- Mutation: rewire the live graph past the rewriter ----------------------------
  platform::Vm* vm = box->vms().Find(deployed.vm_id);
  if (vm == nullptr || vm->graph() == nullptr) {
    std::fprintf(stderr, "deployed guest has no live graph\n");
    return 1;
  }
  click::Element* filter = vm->graph()->Find("filter");
  click::Element* sink = vm->graph()->FindByClass("ToNetfront");
  if (filter == nullptr || sink == nullptr) {
    std::fprintf(stderr, "mutation targets missing from the guest graph\n");
    return 1;
  }
  filter->ConnectOutput(0, sink, 0);
  uint64_t mutate_ns = clock.now();
  std::printf("t=%.1fs mutated: filter now bypasses the rewriter\n",
              sim::ToSeconds(mutate_ns));

  // --- Phase 2: every delivered walk is now off the verified path set ---------------
  clock.RunUntil(sim::FromSeconds(kHorizonSec));
  sampler.SampleWindow(clock.now());  // flush the tail window
  uint64_t total_violations = obs::Int().violations();
  uint64_t tenant_violations = obs::Int().TenantViolations(request.client_id);
  std::printf("mutated phase:  %llu postcards, %llu violations (%llu for %s)\n",
              static_cast<unsigned long long>(obs::Int().postcards() - clean_postcards),
              static_cast<unsigned long long>(total_violations),
              static_cast<unsigned long long>(tenant_violations), request.client_id.c_str());
  if (total_violations == 0 || tenant_violations == 0) {
    std::fprintf(stderr, "mutation went undetected: no conformance violations counted\n");
    return 1;
  }

  // Detection latency: sim time from the rewire to the first path_violation
  // trace event. Must land inside one sampling window.
  uint64_t first_violation_ns = 0;
  uint64_t violation_events = 0;
  for (const obs::TraceEvent& event : obs::Tracer().events()) {
    if (event.kind == obs::EventKind::kPathViolation) {
      ++violation_events;
      if (first_violation_ns == 0) {
        first_violation_ns = event.time_ns;
      }
    }
  }
  if (violation_events == 0 || first_violation_ns < mutate_ns) {
    std::fprintf(stderr, "expected path_violation trace events after the mutation\n");
    return 1;
  }
  uint64_t detect_ns = first_violation_ns - mutate_ns;
  std::printf("detection:      first path_violation %.1f ms after the rewire "
              "(%llu trace events)\n",
              static_cast<double>(detect_ns) / 1e6,
              static_cast<unsigned long long>(violation_events));
  if (detect_ns > kWindowNs) {
    std::fprintf(stderr, "detection took longer than one sampling window\n");
    return 1;
  }

  obs::Health().EvaluateAll();
  obs::HealthState tenant_state = obs::Health().CurrentState(request.client_id);
  std::printf("health:         tenant %s is %s\n", request.client_id.c_str(),
              obs::HealthStateName(tenant_state));
  if (tenant_state == obs::HealthState::kOk) {
    std::fprintf(stderr, "path violations must push the tenant out of kOk\n");
    return 1;
  }

  box->ExportMetrics(&obs::Registry());
  obs::Tracer().ExportMetrics(&obs::Registry());

  // Per-hop latency totals for the two tenant elements, straight from the
  // counters the collector folds — the regression gate pins them exactly.
  uint64_t filter_hop_ns =
      obs::Registry().GetCounter("innet_int_hop_ns_total", {{"element", "filter"}})->value();
  uint64_t rewriter_hop_ns =
      obs::Registry().GetCounter("innet_int_hop_ns_total", {{"element", "rewriter"}})->value();
  std::printf("hop latency:    filter %llu ns total, rewriter %llu ns total\n",
              static_cast<unsigned long long>(filter_hop_ns),
              static_cast<unsigned long long>(rewriter_hop_ns));

  bench::BenchSeries series;
  series.Higher("clean_postcards", static_cast<double>(clean_postcards), 0.0, "postcards");
  series.Lower("clean_violations", static_cast<double>(clean_violations), 0.0, "violations");
  series.Higher("violations_detected", static_cast<double>(total_violations), 0.0, "violations");
  series.Lower("detect_ms", static_cast<double>(detect_ns) / 1e6, 0.0, "ms");
  series.Higher("filter_hop_ns", static_cast<double>(filter_hop_ns), 0.0, "ns");
  series.Higher("rewriter_hop_ns", static_cast<double>(rewriter_hop_ns), 0.0, "ns");

  obs::json::Value results = obs::json::Value::Object();
  results.Set("series", series.ToJson());
  results.Set("clean_postcards", clean_postcards);
  results.Set("clean_violations", clean_violations);
  results.Set("total_postcards", obs::Int().postcards());
  results.Set("total_violations", total_violations);
  results.Set("tenant_violations", tenant_violations);
  results.Set("violation_events", violation_events);
  results.Set("mutate_ns", mutate_ns);
  results.Set("first_violation_ns", first_violation_ns);
  results.Set("detect_ns", detect_ns);
  results.Set("tenant_health", obs::HealthStateName(tenant_state));
  results.Set("int", obs::Int().ToJson());
  results.Set("health", obs::Health().ToJson());
  results.Set("timeseries", sampler.ToJson());
  results.Set("metrics", obs::Registry().ToJson());
  if (!bench::WriteBenchJson("int_conformance", std::move(results))) {
    return 1;
  }
  return 0;
}
