// Helpers for the packet-throughput experiments (Figures 8, 9, 11, 12):
// drive real Click graphs with prepared packets, measure packets/second on
// this machine, and cap the reported rate at the paper's 10 GbE line rate —
// the substrate is a different CPU, but who saturates the NIC first is what
// the figures are about.
#ifndef BENCH_THROUGHPUT_UTIL_H_
#define BENCH_THROUGHPUT_UTIL_H_

#include <vector>

#include "bench/bench_util.h"
#include "src/click/elements.h"
#include "src/click/graph.h"

namespace innet::bench {

inline constexpr double kLineRateBps = 10e9;
// Ethernet overhead per frame beyond the visible bytes: preamble (8) +
// inter-frame gap (12) + CRC (4).
inline constexpr double kWireOverheadBytes = 24;

inline double LineRatePps(double frame_bytes) {
  return kLineRateBps / ((frame_bytes + kWireOverheadBytes) * 8.0);
}

// Pushes copies of `templates` round-robin into `graph`'s first source for
// `duration_sec` of wall time; returns achieved packets/second.
inline double MeasurePps(click::Graph* graph, const std::vector<Packet>& templates,
                         double duration_sec = 0.15) {
  // Warm-up.
  for (const Packet& t : templates) {
    Packet p = t;
    graph->InjectAtSource(p);
  }
  WallTimer timer;
  uint64_t sent = 0;
  size_t cursor = 0;
  while (true) {
    for (int burst = 0; burst < 256; ++burst) {
      Packet p = templates[cursor];
      graph->InjectAtSource(p);
      ++sent;
      cursor = cursor + 1 == templates.size() ? 0 : cursor + 1;
    }
    if (timer.ElapsedSec() >= duration_sec) {
      break;
    }
  }
  return static_cast<double>(sent) / timer.ElapsedSec();
}

// Round-robin across several graphs (one per VM), all sharing one core —
// the Figure 9 / Figure 12 setup.
inline double MeasureAggregatePps(const std::vector<click::Graph*>& graphs,
                                  const std::vector<std::vector<Packet>>& templates,
                                  double duration_sec = 0.15) {
  WallTimer timer;
  uint64_t sent = 0;
  std::vector<size_t> cursors(graphs.size(), 0);
  while (true) {
    for (size_t g = 0; g < graphs.size(); ++g) {
      const std::vector<Packet>& batch = templates[g];
      size_t& cursor = cursors[g];
      for (int burst = 0; burst < 32; ++burst) {
        Packet p = batch[cursor];
        graphs[g]->InjectAtSource(p);
        ++sent;
        cursor = cursor + 1 == batch.size() ? 0 : cursor + 1;
      }
    }
    if (timer.ElapsedSec() >= duration_sec) {
      break;
    }
  }
  return static_cast<double>(sent) / timer.ElapsedSec();
}

}  // namespace innet::bench

#endif  // BENCH_THROUGHPUT_UTIL_H_
