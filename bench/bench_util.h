// Shared helpers for the experiment harnesses: wall-clock timing,
// paper-style table printing, and JSON telemetry snapshots.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/benchdiff.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace innet::bench {

// Collects a bench's headline metrics into the standardized `series` section
// that tools/innet_benchdiff and the CI regression gate consume. Only feed it
// values derived from the simulated clock or deterministic work counts —
// wall-clock timings vary host to host and would make the gate flake.
class BenchSeries {
 public:
  BenchSeries& Higher(const std::string& metric, double value, double tolerance_pct,
                      const std::string& unit) {
    return Add(metric, value, "higher_is_better", tolerance_pct, unit);
  }
  BenchSeries& Lower(const std::string& metric, double value, double tolerance_pct,
                     const std::string& unit) {
    return Add(metric, value, "lower_is_better", tolerance_pct, unit);
  }

  // The JSON array for results.Set("series", ...).
  obs::json::Value ToJson() const {
    obs::json::Value out = obs::json::Value::Array();
    for (const obs::BenchSeriesEntry& entry : entries_) {
      out.Push(obs::BenchSeriesEntryJson(entry));
    }
    return out;
  }

 private:
  BenchSeries& Add(const std::string& metric, double value, const std::string& direction,
                   double tolerance_pct, const std::string& unit) {
    obs::BenchSeriesEntry entry;
    entry.metric = metric;
    entry.value = value;
    entry.direction = direction;
    entry.tolerance_pct = tolerance_pct;
    entry.unit = unit;
    entries_.push_back(std::move(entry));
    return *this;
  }

  std::vector<obs::BenchSeriesEntry> entries_;
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  double ElapsedMs() const { return ElapsedSec() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------------\n");
}

// Writes a bench telemetry snapshot to BENCH_<name>.json in the working
// directory, wrapping `results` with the bench name so downstream tooling
// (scripts/regenerate_results.sh, plotting) can discover and validate it.
// Returns false (after printing to stderr) on I/O failure.
inline bool WriteBenchJson(const std::string& name, obs::json::Value results) {
  obs::json::Value doc = obs::json::Value::Object();
  doc.Set("bench", name);
  doc.Set("results", std::move(results));
  std::string path = "BENCH_" + name + ".json";
  if (!doc.WriteFile(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("telemetry -> %s\n", path.c_str());
  return true;
}

// Summarizes a registry histogram with its deterministic quantile accessors
// (bucket interpolation, no sample retention) — the bench-side counterpart
// of what innet_top computes from a serialized dump.
inline obs::json::Value HistogramSummaryJson(const obs::Histogram& histogram) {
  obs::json::Value out = obs::json::Value::Object();
  out.Set("count", histogram.count());
  out.Set("sum", histogram.sum());
  out.Set("p50", histogram.P50());
  out.Set("p90", histogram.P90());
  out.Set("p99", histogram.P99());
  return out;
}

}  // namespace innet::bench

#endif  // BENCH_BENCH_UTIL_H_
