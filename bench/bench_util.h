// Shared helpers for the experiment harnesses: wall-clock timing and
// paper-style table printing.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace innet::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  double ElapsedMs() const { return ElapsedSec() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------------\n");
}

}  // namespace innet::bench

#endif  // BENCH_BENCH_UTIL_H_
