// Reproduces Figure 10 ("Static analysis checking scales linearly with the
// size of the operator's network") and the §6.1 single-request timing:
// the paper reports ~101 ms to compile the rules and ~5 ms to run the
// analysis on the Figure 3 topology, and ~1.3 s checking at ~1,000 boxes.
//
// Substitution note: the paper's "compilation" is GHC compiling the Haskell
// rules SymNet executes; ours is parsing the request plus building the
// symbolic models for the whole topology snapshot. Both are the
// per-request fixed cost that dominates until the network gets large, so the
// compilation-vs-checking split keeps its meaning.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/controller/controller.h"
#include "src/obs/metrics.h"
#include "src/controller/stock_modules.h"
#include "src/policy/reach_checker.h"
#include "src/topology/network.h"

namespace {

using namespace innet;
using controller::ClientRequest;
using controller::Controller;
using controller::DeployOutcome;
using controller::RequesterClass;

ClientRequest BatcherRequest() {
  // The Figure 4 request.
  ClientRequest request;
  request.client_id = "mobile1";
  request.requester = RequesterClass::kClient;
  request.click_config =
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0)"
      "-> TimedUnqueue(120,100)"
      "-> dst :: ToNetfront();";
  request.requirements =
      "reach from internet udp -> client dst port 1500 const proto && dst port && payload";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

}  // namespace

int main() {
  bench::PrintHeader("Sec 6.1 prelude: one request on the Figure 3 topology");
  {
    Controller controller(topology::Network::MakeFigure3());
    DeployOutcome outcome = controller.Deploy(BatcherRequest());
    std::printf("accepted=%s platform=%s  model-build(\"compile\")=%.2f ms  checking=%.2f ms"
                "  engine-steps=%llu\n",
                outcome.accepted ? "yes" : "no", outcome.platform.c_str(),
                outcome.model_build_ms, outcome.check_ms,
                static_cast<unsigned long long>(outcome.engine_steps));
  }

  bench::PrintHeader("Figure 10: checking time vs operator network size");
  std::printf("%-12s %-16s %-16s %-14s\n", "middleboxes", "compile (ms)", "checking (ms)",
              "engine steps");
  bench::PrintRule();

  obs::json::Value rows = obs::json::Value::Array();
  for (int n : {1, 3, 7, 15, 31, 63, 127, 255, 511, 1023}) {
    // Fresh controller per size: the snapshot is the whole network.
    bench::WallTimer compile_timer;
    topology::Network network = topology::Network::MakeScalingTopology(n);
    Controller controller(std::move(network));
    double compile_ms = compile_timer.ElapsedMs();

    bench::WallTimer check_timer;
    DeployOutcome outcome = controller.Deploy(BatcherRequest());
    double total_ms = check_timer.ElapsedMs();
    if (!outcome.accepted) {
      std::printf("%-12d deployment failed: %s\n", n, outcome.reason.c_str());
      continue;
    }
    // The deploy path itself splits model building from checking.
    compile_ms += outcome.model_build_ms;
    double checking_ms = outcome.check_ms;
    (void)total_ms;
    std::printf("%-12d %-16.2f %-16.2f %-14llu\n", n, compile_ms, checking_ms,
                static_cast<unsigned long long>(outcome.engine_steps));
    obs::json::Value row = obs::json::Value::Object();
    row.Set("middleboxes", n);
    row.Set("compile_ms", compile_ms);
    row.Set("checking_ms", checking_ms);
    row.Set("engine_steps", outcome.engine_steps);
    row.Set("sim_verify_ns", outcome.sim_verify_ns);
    rows.Push(std::move(row));
  }

  std::printf("\nShape check: both columns should grow roughly linearly in the\n"
              "middlebox count, with checking staying around a second at ~1,000 boxes\n"
              "(paper: SymNet checks a 1,000-box network in ~1.3 s).\n");

  // Headline series for the CI regression gate: only the deterministic
  // engine-step and simulated-latency columns — the wall-clock ms columns
  // vary host to host and would make the gate flake.
  bench::BenchSeries series;
  uint64_t total_steps = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    total_steps += static_cast<uint64_t>(rows.at(i).Find("engine_steps")->int_number());
  }
  series.Lower("total_engine_steps", static_cast<double>(total_steps), 0.0, "steps");
  if (rows.size() > 0) {
    const obs::json::Value& largest = rows.at(rows.size() - 1);
    series.Lower("largest_engine_steps", largest.Find("engine_steps")->number(), 0.0, "steps");
    series.Lower("largest_sim_verify_ms", largest.Find("sim_verify_ns")->number() / 1e6, 0.0,
                 "ms");
  }

  obs::json::Value results = obs::json::Value::Object();
  results.Set("scaling", std::move(rows));
  results.Set("series", series.ToJson());
  results.Set("metrics", obs::Registry().ToJson());
  bench::WriteBenchJson("fig10_controller_scaling", std::move(results));
  return 0;
}
