// Reproduces Figure 8: "Cumulative throughput when a single ClickOS VM
// handles configurations for multiple clients." One consolidated VM runs N
// per-client firewall configurations behind an IPClassifier destination
// demux; throughput holds ~line rate until the linear demux saturates the
// core (paper: flat at ~10 Gb/s to ~150 clients, ~8.2 Gb/s at 252).
#include <cstdio>
#include <vector>

#include "bench/throughput_util.h"
#include "src/platform/consolidation.h"

namespace {

using namespace innet;
using platform::ConsolidateTenants;
using platform::TenantConfig;

constexpr double kFrameBytes = 1500;

}  // namespace

int main() {
  bench::PrintHeader("Figure 8: cumulative throughput vs configurations per VM");
  // The knee's position is set by the ratio of per-core packet budget to NIC
  // line rate. This machine's core is several times faster per packet than
  // the paper's 2013 Xeon E3, so alongside the paper's 10 GbE we report a
  // 40 GbE column, which restores the original core-to-NIC ratio and with it
  // the knee inside the 24-252 range.
  std::printf("%-14s %-12s %-18s %-18s %-18s\n", "configs/VM", "raw Mpps", "core Gbit/s",
              "@10GbE Gbit/s", "@40GbE Gbit/s");
  bench::PrintRule();

  for (int n : {24, 48, 72, 96, 120, 144, 168, 192, 216, 240, 252}) {
    std::vector<TenantConfig> tenants;
    std::vector<Packet> templates;
    for (int i = 0; i < n; ++i) {
      TenantConfig tenant;
      tenant.addr = Ipv4Address(Ipv4Address::MustParse("172.16.0.10").value() +
                                static_cast<uint32_t>(i));
      tenant.config_text =
          "FromNetfront() -> IPFilter(allow tcp, allow udp) -> ToNetfront();";
      tenants.push_back(tenant);
      templates.push_back(Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"), tenant.addr,
                                          5000, 80,
                                          static_cast<size_t>(kFrameBytes) - 42));
    }
    std::string error;
    auto merged = ConsolidateTenants(tenants, &error);
    if (!merged) {
      std::fprintf(stderr, "consolidation failed: %s\n", error.c_str());
      return 1;
    }
    auto graph = click::Graph::Build(*merged, &error);
    if (graph == nullptr) {
      std::fprintf(stderr, "graph build failed: %s\n", error.c_str());
      return 1;
    }

    double pps = bench::MeasurePps(graph.get(), templates);
    double core_gbps = pps * kFrameBytes * 8 / 1e9;
    double at_10g = std::min(core_gbps, 10.0);
    double at_40g = std::min(core_gbps, 40.0);
    std::printf("%-14d %-12.3f %-18.2f %-18.2f %-18.2f\n", n, pps / 1e6, core_gbps, at_10g,
                at_40g);
  }
  std::printf("\n(paper: ~10 Gb/s line rate up to ~150 configurations, declining to ~8.2 Gb/s\n"
              " at 252 as the single core running the linear demux saturates; the same flat-\n"
              " then-decline knee appears in the 40GbE column, at the paper's core-to-NIC\n"
              " ratio)\n");
  return 0;
}
