// Reproduces Figure 16: "Clients downloading a 1 KB file from the origin or
// our CDN." The paper ran squid reverse proxies in sandboxed x86 VMs on
// three In-Net platforms (Romania, Germany, Italy) with 75 PlanetLab clients
// spread by geolocation; we substitute a latency model with the same
// structure (far origin with a heavy tail, near caches), deployed through
// the real controller.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/controller.h"
#include "src/controller/stock_modules.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

constexpr int kClients = 75;
constexpr int kDownloadsPerClient = 20;
constexpr double kServerProcSec = 0.004;
constexpr double kSandboxProcSec = 0.002;  // the x86 VM runs sandboxed (§8)

// 1 KB over a fresh TCP connection: handshake (1 RTT) + request/response
// (1 RTT) + a little server time.
double DownloadSec(double rtt_sec, double proc_sec) { return 2 * rtt_sec + proc_sec; }

}  // namespace

int main() {
  // Deploy the three CDN caches through the controller as sandboxed x86 VMs
  // on a three-PoP operator (the paper's Romania/Germany/Italy platforms);
  // per-PoP reachability requirements make geolocation placement put each
  // cache next to the clients it serves.
  bench::PrintHeader("CDN cache deployment (sandboxed x86 VMs via the controller)");
  controller::Controller ctrl(topology::Network::MakeMultiPop(3));
  int deployed = 0;
  const char* regions[] = {"Romania", "Germany", "Italy"};
  for (int i = 0; i < 3; ++i) {
    controller::ClientRequest request;
    request.client_id = "cdn" + std::to_string(i);
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config = controller::StockX86Vm();
    request.requirements = "reach from 10." + std::to_string(i + 1) +
                           ".0.0/16 tcp dst port 80 -> 172.16." + std::to_string(i + 10) +
                           ".10 -> internet";
    controller::DeployOutcome outcome = ctrl.Deploy(request);
    if (outcome.accepted) {
      ++deployed;
      std::printf("  %-8s cache on %s (%s)%s\n", regions[i], outcome.platform.c_str(),
                  outcome.module_addr.ToString().c_str(),
                  outcome.sandboxed ? " [sandboxed]" : "");
    } else {
      std::printf("  %-8s cache rejected: %s\n", regions[i], outcome.reason.c_str());
    }
  }
  std::printf("deployed %d/3 caches, each in its clients' PoP\n", deployed);

  sim::Rng rng(2025);
  sim::Samples origin_ms;
  sim::Samples cdn_ms;
  for (int client = 0; client < kClients; ++client) {
    // Client -> origin RTT: continental distances with a heavy tail (some
    // PlanetLab nodes are far or badly connected).
    double origin_rtt = 0.025 + rng.Exponential(0.035);
    if (rng.Bernoulli(0.1)) {
      origin_rtt += rng.Exponential(0.12);  // the unlucky tail
    }
    // Geolocation maps the client to the nearest of three caches.
    double cache_rtt = 0.008 + rng.Uniform(0, 0.035);
    for (int d = 0; d < kDownloadsPerClient; ++d) {
      double jitter = rng.Exponential(0.002);
      origin_ms.Add((DownloadSec(origin_rtt, kServerProcSec) + jitter) * 1e3);
      cdn_ms.Add((DownloadSec(cache_rtt, kServerProcSec + kSandboxProcSec) + jitter) * 1e3);
    }
  }

  bench::PrintHeader("Figure 16: CDF of 1 KB download delay (ms)");
  std::printf("%-8s %-14s %-14s\n", "CDF %", "origin", "In-Net CDN");
  bench::PrintRule();
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("%-8.0f %-14.1f %-14.1f\n", pct, origin_ms.Percentile(pct),
                cdn_ms.Percentile(pct));
  }
  bench::PrintRule();
  std::printf("median speedup: %.1fx   90th-percentile speedup: %.1fx\n",
              origin_ms.Median() / cdn_ms.Median(),
              origin_ms.Percentile(90) / cdn_ms.Percentile(90));
  std::printf("(paper: median download time halved, 90th percentile four times lower)\n");
  return 0;
}
