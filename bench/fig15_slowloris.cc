// Reproduces Figure 15: "Defending against a Slowloris attack with In-Net."
// Slowloris starves a server's connection slots by trickling request bytes.
// The defense (§8): when under attack, the victim deploys reverse-proxy
// processing modules at In-Net platforms through the controller and shifts
// new connections to them via DNS; the proxies only forward complete
// requests, so the trickled connections never reach the origin.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/controller.h"
#include "src/controller/stock_modules.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

constexpr double kDurationSec = 900;
constexpr double kAttackStart = 120;
constexpr double kAttackEnd = 600;
constexpr double kDefenseAt = 180;   // detection + controller deployment
constexpr double kValidRate = 250;   // valid connection attempts / s
constexpr double kAttackRate = 150;  // slowloris connections / s
constexpr int kServerSlots = 300;
constexpr double kServiceTime = 0.15;   // s per valid request at the origin
constexpr double kSlowlorisHold = 300;  // s a trickled connection pins a slot

struct Scenario {
  bool defended;
  std::vector<double> served_per_bin;  // 30 s bins
};

Scenario Run(bool defended, double deploy_done_sec) {
  Scenario scenario;
  scenario.defended = defended;
  scenario.served_per_bin.assign(static_cast<size_t>(kDurationSec / 30), 0);
  sim::EventQueue clock;
  sim::Rng rng(99);

  int server_free = kServerSlots;
  auto serve_at_origin = [&](double hold, bool count) {
    if (server_free <= 0) {
      return false;
    }
    --server_free;
    clock.ScheduleAfter(sim::FromSeconds(hold), [&server_free, &scenario, count, &clock] {
      ++server_free;
      if (count) {
        size_t bin = static_cast<size_t>(sim::ToSeconds(clock.now()) / 30);
        if (bin < scenario.served_per_bin.size()) {
          scenario.served_per_bin[bin] += 1;
        }
      }
    });
    return true;
  };

  // Fraction of *new* connections the DNS redirect has shifted to the
  // proxies (ramps with record-TTL expiry after the deployment finishes).
  auto redirected_fraction = [&](double now) {
    if (!defended || now < deploy_done_sec) {
      return 0.0;
    }
    return std::min(0.95, (now - deploy_done_sec) / 60.0 * 0.95);
  };

  // Valid clients.
  {
    double t = 0;
    while (t < kDurationSec) {
      t += rng.Exponential(1.0 / kValidRate);
      clock.ScheduleAt(sim::FromSeconds(t), [&, t] {
        double now = sim::ToSeconds(clock.now());
        if (rng.Bernoulli(redirected_fraction(now))) {
          // Served by a reverse proxy (cache hit or buffered-and-forwarded
          // over the proxy's persistent origin connections).
          size_t bin = static_cast<size_t>(now / 30);
          if (bin < scenario.served_per_bin.size()) {
            scenario.served_per_bin[bin] += 1;
          }
          return;
        }
        serve_at_origin(kServiceTime, /*count=*/true);
      });
    }
  }
  // The attacker (also resolves the victim's name, so the DNS shift
  // eventually routes it into the proxies, which simply absorb it).
  {
    double t = kAttackStart;
    while (t < kAttackEnd) {
      t += rng.Exponential(1.0 / kAttackRate);
      clock.ScheduleAt(sim::FromSeconds(t), [&] {
        double now = sim::ToSeconds(clock.now());
        if (rng.Bernoulli(redirected_fraction(now))) {
          return;  // swallowed by a proxy: never completes, never forwarded
        }
        serve_at_origin(kSlowlorisHold, /*count=*/false);
      });
    }
  }
  clock.RunUntil(sim::FromSeconds(kDurationSec));
  return scenario;
}

}  // namespace

int main() {
  // The defense deploys three reverse proxies through the real controller;
  // this is the control-plane latency component of the recovery time.
  bench::PrintHeader("Defense deployment through the In-Net controller");
  controller::Controller ctrl(topology::Network::MakeFigure3());
  double deploy_ms = 0;
  int deployed = 0;
  for (int i = 0; i < 3; ++i) {
    controller::ClientRequest request;
    request.client_id = "victim" + std::to_string(i);
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config =
        controller::StockReverseProxy(Ipv4Address::MustParse("5.5.5.5"));
    request.whitelist = {Ipv4Address::MustParse("5.5.5.5")};
    controller::DeployOutcome outcome = ctrl.Deploy(request);
    if (outcome.accepted) {
      ++deployed;
      deploy_ms += outcome.model_build_ms + outcome.check_ms;
    } else {
      std::printf("  proxy %d rejected: %s\n", i, outcome.reason.c_str());
    }
  }
  std::printf("deployed %d reverse proxies, total controller time %.1f ms\n", deployed,
              deploy_ms);

  bench::PrintHeader("Figure 15: valid requests served per second over time");
  Scenario single = Run(/*defended=*/false, kDefenseAt);
  Scenario innet = Run(/*defended=*/true, kDefenseAt);
  std::printf("%-10s %-16s %-16s\n", "time (s)", "single server", "with In-Net");
  bench::PrintRule();
  for (size_t bin = 0; bin < single.served_per_bin.size(); ++bin) {
    std::printf("%-10zu %-16.0f %-16.0f\n", bin * 30, single.served_per_bin[bin] / 30,
                innet.served_per_bin[bin] / 30);
  }
  std::printf("\n(attack from t=%.0f s to t=%.0f s; defense deployed at t=%.0f s.\n"
              " paper: the single server starves for the attack's duration, while In-Net\n"
              " quickly instantiates processing, diverts traffic, and restores service)\n",
              kAttackStart, kAttackEnd, kDefenseAt);
  return 0;
}
