// Reproduces the §6 MAWI-trace analysis: "at any moment, there are at most
// 1,600 to 4,000 active TCP connections, and between 400 and 840 active TCP
// clients" per 15-minute window — so a single In-Net platform supporting
// ~1,000 tenants can run a personalized firewall for every active source on
// the WIDE backbone. The MAWI captures themselves are not redistributable;
// the synthetic traces reuse the analysis verbatim (see DESIGN.md).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/trace/backbone_trace.h"

int main() {
  using namespace innet;

  bench::PrintHeader("Sec 6: backbone-trace analysis, five 15-minute windows");
  std::printf("%-10s %-14s %-18s %-16s %-18s\n", "window", "flows", "max concurrent",
              "max openers", "mean openers");
  bench::PrintRule();

  size_t overall_max_openers = 0;
  // Five windows with different arrival intensities, like the paper's
  // day-of-week spread (Jan 13-17, 2014).
  double intensities[] = {125, 155, 190, 225, 255};
  for (int day = 0; day < 5; ++day) {
    trace::TraceConfig config;
    config.seed = static_cast<uint64_t>(100 + day);
    config.arrivals_per_sec = intensities[day];
    auto flows = trace::SynthesizeBackboneTrace(config);
    auto stats = trace::AnalyzeTrace(flows, config.duration_sec);
    overall_max_openers = std::max(overall_max_openers, stats.max_active_openers);
    std::printf("%-10d %-14zu %-18zu %-16zu %-18.0f\n", day + 1, stats.total_flows,
                stats.max_concurrent_connections, stats.max_active_openers,
                stats.mean_active_openers);
  }
  bench::PrintRule();
  std::printf("peak active openers across windows: %zu\n", overall_max_openers);
  std::printf("(paper: 1,600-4,000 concurrent connections and 400-840 active openers;\n"
              " a 1,000-tenant In-Net platform covers every active source: %s)\n",
              overall_max_openers <= 1000 ? "holds" : "VIOLATED");
  return overall_max_openers <= 1000 ? 0 : 1;
}
