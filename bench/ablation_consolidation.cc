// Ablation (DESIGN.md §5): the consolidation demux. The paper's merged VM
// demultiplexes tenants with an IPClassifier — a linear pattern scan whose
// per-packet cost produces Figure 8's throughput knee. Swapping it for an
// exact-match hash table (AddressDemux) makes per-packet cost independent of
// the tenant count and the knee disappears, showing the knee is an artifact
// of the demux data structure, not of consolidation itself.
#include <cstdio>
#include <vector>

#include "bench/throughput_util.h"
#include "src/platform/consolidation.h"

namespace {

using namespace innet;
using platform::ConsolidateTenants;
using platform::DemuxKind;
using platform::TenantConfig;

constexpr double kFrameBytes = 1500;

double MeasureDemux(int tenants_count, DemuxKind demux) {
  std::vector<TenantConfig> tenants;
  std::vector<Packet> templates;
  for (int i = 0; i < tenants_count; ++i) {
    TenantConfig tenant;
    tenant.addr = Ipv4Address(Ipv4Address::MustParse("172.16.0.10").value() +
                              static_cast<uint32_t>(i));
    tenant.config_text = "FromNetfront() -> IPFilter(allow tcp, allow udp) -> ToNetfront();";
    tenants.push_back(tenant);
    templates.push_back(Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"), tenant.addr, 5000,
                                        80, static_cast<size_t>(kFrameBytes) - 42));
  }
  std::string error;
  auto merged = ConsolidateTenants(tenants, &error, demux);
  if (!merged) {
    std::fprintf(stderr, "consolidation failed: %s\n", error.c_str());
    std::exit(1);
  }
  auto graph = click::Graph::Build(*merged, &error);
  if (graph == nullptr) {
    std::fprintf(stderr, "graph build failed: %s\n", error.c_str());
    std::exit(1);
  }
  return bench::MeasurePps(graph.get(), templates, 0.1);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: consolidation demux — linear IPClassifier vs hash demux");
  std::printf("%-14s %-22s %-22s %-10s\n", "configs/VM", "linear demux (Mpps)",
              "hash demux (Mpps)", "speedup");
  bench::PrintRule();
  for (int n : {24, 48, 96, 144, 192, 252}) {
    double linear = MeasureDemux(n, DemuxKind::kLinearClassifier) / 1e6;
    double hashed = MeasureDemux(n, DemuxKind::kHashDemux) / 1e6;
    std::printf("%-14d %-22.3f %-22.3f %-10.2f\n", n, linear, hashed, hashed / linear);
  }
  std::printf("\n(the linear scan degrades with the tenant count — Figure 8's knee — while\n"
              " the hash demux stays flat; the paper's design choice is the linear one,\n"
              " which is what its published curve reflects)\n");
  return 0;
}
