// Control-plane chaos harness: quantifies the fault-tolerant control plane
// under seeded loss/duplication/reordering, partition windows, and a
// mid-flight controller crash. Not a paper figure — this is the robustness
// acceptance bench for the lossy ControlChannel + idempotent retries + deploy
// journal stack.
//
// Part 1 sweeps control-message loss over a 4-PoP fleet taking channel
// deploys plus one live migration, and reports the retry/dedup economics
// alongside the convergence invariants (no duplicate installs, no stranded
// quota reservations, no tenant left permanently in flight).
//
// Part 2 opens a partition window mid-deployment: ops against the cut-off
// platform retry and give up, the platform keeps serving its installed
// tenants, and the heal-time reconcile squares belief with actuality.
//
// Part 3 crashes the controller with deploys in flight (fleet + journal
// survive, orchestrator belief dies) and replays the journal to convergence.
//
// Everything runs on the simulated clock with a fixed seed, so the JSON
// snapshot is byte-identical across runs — scripts/ci.sh runs the bench
// twice and diffs.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/fleet.h"
#include "src/controller/journal.h"
#include "src/controller/orchestrator.h"
#include "src/obs/metrics.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace {

using namespace innet;
using controller::ClientRequest;
using controller::DeployJournal;
using controller::JournalEntry;
using controller::JournalState;
using controller::Orchestrator;
using controller::OrchestratedDeploy;
using controller::OrchestratorOptions;
using controller::PlatformFleet;

constexpr int kPops = 4;
constexpr int kTenants = 6;  // even split stateful / stateless
constexpr uint64_t kSeed = 42;

ClientRequest StatefulRequest(int i) {
  ClientRequest request;
  request.client_id = "meter" + std::to_string(i);
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - 10.1.0.5 - 0 0) "
      "-> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.1.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.1.0.0/16")};
  return request;
}

ClientRequest StatelessRequest(int i) {
  ClientRequest request;
  request.client_id = "web" + std::to_string(i);
  request.requester = controller::RequesterClass::kClient;
  request.click_config = "FromNetfront() -> IPFilter(allow udp dst port " +
                         std::to_string(1500 + i) +
                         ") -> IPRewriter(pattern - - 10.1.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.1.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.1.0.0/16")};
  return request;
}

// The convergence invariants every scenario must re-establish. `converged`
// is the headline acceptance boolean; the components are kept separate so a
// regression names the broken property.
struct Invariants {
  bool journal_quiescent = false;  // no entry left permanently in flight
  bool no_duplicate_installs = false;
  bool no_stranded_reservations = false;
  size_t placements = 0;
  size_t fleet_vms = 0;
  size_t journal_entries = 0;
  size_t reserved_modules = 0;

  bool converged() const {
    return journal_quiescent && no_duplicate_installs && no_stranded_reservations;
  }
};

Invariants CheckInvariants(Orchestrator& orch) {
  Invariants inv;
  inv.placements = orch.placement_count();
  inv.journal_entries = orch.journal().entries().size();
  inv.journal_quiescent = orch.journal().InFlightCount() == 0;

  // Count actual guests: dedicated VMs must match dedicated placements
  // one-for-one, plus exactly one shared VM per platform with consolidated
  // tenants — a retried/duplicated install that executed twice breaks this.
  size_t expected_vms = 0;
  size_t consolidated_tenants = 0;
  for (const auto& name : orch.fleet().Names()) {
    inv.fleet_vms += orch.fleet().Get(name)->vms().vm_count();
    size_t shared = orch.ConsolidatedTenantCount(name);
    consolidated_tenants += shared;
    if (shared > 0) {
      ++expected_vms;  // the shared VM itself
    }
  }
  // placement_count() == consolidated tenants + dedicated tenants; the
  // dedicated share is the remainder, and each dedicated tenant owns one VM.
  expected_vms += inv.placements - consolidated_tenants;
  inv.no_duplicate_installs = inv.fleet_vms == expected_vms;

  // Quota accounting must equal live placements exactly: a leaked
  // ReservationGuard (or a double release) shows up here.
  for (int i = 0; i < kTenants; ++i) {
    inv.reserved_modules +=
        orch.engine().admission().UsageFor("meter" + std::to_string(i)).modules;
    inv.reserved_modules += orch.engine().admission().UsageFor("web" + std::to_string(i)).modules;
  }
  inv.no_stranded_reservations = inv.reserved_modules == inv.placements;
  return inv;
}

obs::json::Value InvariantsJson(const Invariants& inv) {
  obs::json::Value out = obs::json::Value::Object();
  out.Set("converged", inv.converged());
  out.Set("journal_quiescent", inv.journal_quiescent);
  out.Set("no_duplicate_installs", inv.no_duplicate_installs);
  out.Set("no_stranded_reservations", inv.no_stranded_reservations);
  out.Set("placements", static_cast<uint64_t>(inv.placements));
  out.Set("reserved_modules", static_cast<uint64_t>(inv.reserved_modules));
  out.Set("fleet_vms", static_cast<uint64_t>(inv.fleet_vms));
  out.Set("journal_entries", static_cast<uint64_t>(inv.journal_entries));
  return out;
}

obs::json::Value ChannelJson(Orchestrator& orch) {
  obs::json::Value out = obs::json::Value::Object();
  out.Set("sent", orch.channel().sent());
  out.Set("delivered", orch.channel().delivered());
  out.Set("dropped", orch.channel().dropped());
  out.Set("duplicated", orch.channel().duplicated());
  out.Set("partition_dropped", orch.channel().partition_dropped());
  out.Set("deduped", orch.channel().deduped());
  out.Set("retries", orch.control_client().retries());
  out.Set("timeouts", orch.control_client().timeouts());
  out.Set("giveups", orch.control_client().giveups());
  return out;
}

// --- Part 1: loss sweep ----------------------------------------------------------------

obs::json::Value RunLossScenario(double loss_p, bool* all_converged) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = kSeed;
  plan.control_loss_p = loss_p;
  plan.control_dup_p = 0.2;
  plan.control_reorder_p = 0.1;
  plan.control_delay_mean_ms = 1.0;
  sim::FaultInjector faults(plan);

  Orchestrator orch(topology::Network::MakeMultiPop(kPops), &clock);
  orch.SetControlFaults(&faults);

  int accepted = 0;
  std::string migratable;
  for (int i = 0; i < kTenants; ++i) {
    ClientRequest request = i % 2 == 0 ? StatefulRequest(i) : StatelessRequest(i);
    orch.DeployViaChannel(request, [&, i](const OrchestratedDeploy& result) {
      if (result.outcome.accepted) {
        ++accepted;
        if (i % 2 == 0 && migratable.empty()) {
          migratable = result.outcome.module_id;
        }
      }
    });
    clock.RunUntil(clock.now() + sim::FromSeconds(2));
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(30));

  // One live migration under the same fault plan.
  bool migration_ok = false;
  bool migration_done = false;
  if (!migratable.empty()) {
    const auto* placement = orch.FindPlacement(migratable);
    if (placement != nullptr) {
      std::string target;
      for (const auto& name : orch.fleet().Names()) {
        if (name != placement->first) {
          target = name;
          break;
        }
      }
      orch.MigrateTenant(migratable, target, [&](const controller::MigrationReport& report) {
        migration_done = true;
        migration_ok = report.ok;
      });
      clock.RunUntil(clock.now() + sim::FromSeconds(60));
    }
  }

  Invariants inv = CheckInvariants(orch);
  *all_converged = *all_converged && inv.converged() && accepted == kTenants;

  std::printf("%-8.2f %-9d %-8llu %-8llu %-8llu %-8llu %-8llu %-6s %-6s\n", loss_p, accepted,
              static_cast<unsigned long long>(orch.channel().dropped()),
              static_cast<unsigned long long>(orch.channel().duplicated()),
              static_cast<unsigned long long>(orch.channel().deduped()),
              static_cast<unsigned long long>(orch.control_client().retries()),
              static_cast<unsigned long long>(orch.control_client().giveups()),
              migration_done ? (migration_ok ? "ok" : "abort") : "n/a",
              inv.converged() ? "yes" : "NO");

  obs::json::Value out = obs::json::Value::Object();
  out.Set("control_loss_p", loss_p);
  out.Set("accepted", accepted);
  out.Set("migration_done", migration_done);
  out.Set("migration_ok", migration_ok);
  out.Set("channel", ChannelJson(orch));
  out.Set("invariants", InvariantsJson(inv));
  out.Set("sim_end_ns", clock.now());
  return out;
}

// --- Part 2: partition window ----------------------------------------------------------

obs::json::Value RunPartitionWindow(bool* all_converged) {
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = kSeed;
  plan.control_loss_p = 0.1;
  plan.control_dup_p = 0.1;
  plan.control_delay_mean_ms = 1.0;
  sim::FaultInjector faults(plan);

  Orchestrator orch(topology::Network::MakeMultiPop(kPops), &clock);
  orch.SetControlFaults(&faults);

  // Four tenants land normally.
  int accepted = 0;
  for (int i = 0; i < 4; ++i) {
    orch.DeployViaChannel(i % 2 == 0 ? StatefulRequest(i) : StatelessRequest(i),
                          [&](const OrchestratedDeploy& r) { accepted += r.outcome.accepted; });
    clock.RunUntil(clock.now() + sim::FromSeconds(2));
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(30));

  // The window opens: platform0 is cut off. Two deploys pinned at it retry
  // until they give up; its installed tenants keep serving locally.
  orch.SetPartitioned("platform0", true);
  int gave_up = 0;
  for (int i = 4; i < kTenants; ++i) {
    ClientRequest request = StatelessRequest(i);
    request.pinned_platform = "platform0";
    orch.DeployViaChannel(request, [&](const OrchestratedDeploy& r) {
      gave_up += !r.outcome.accepted;
    });
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(60));

  // Heal: SetPartitioned(false) reconciles belief with actual guest state.
  orch.SetPartitioned("platform0", false);
  controller::ReconcileReport heal = orch.ReconcilePlatform("platform0");
  clock.RunUntil(clock.now() + sim::FromSeconds(30));

  Invariants inv = CheckInvariants(orch);
  *all_converged = *all_converged && inv.converged() && accepted == 4 && gave_up == 2;

  std::printf("accepted before window:   %d\n", accepted);
  std::printf("gave up during window:    %d (of 2 pinned at the cut-off platform)\n", gave_up);
  std::printf("partition drops:          %llu\n",
              static_cast<unsigned long long>(orch.channel().partition_dropped()));
  std::printf("heal reconcile:           checked=%zu healthy=%zu lost=%zu cleanups=%zu\n",
              heal.checked, heal.healthy, heal.lost, heal.cleanups);
  std::printf("invariants converged:     %s\n", inv.converged() ? "yes" : "NO");

  obs::json::Value out = obs::json::Value::Object();
  out.Set("accepted_before_window", accepted);
  out.Set("gave_up_in_window", gave_up);
  out.Set("heal_checked", static_cast<uint64_t>(heal.checked));
  out.Set("heal_healthy", static_cast<uint64_t>(heal.healthy));
  out.Set("heal_lost", static_cast<uint64_t>(heal.lost));
  out.Set("heal_cleanups", static_cast<uint64_t>(heal.cleanups));
  out.Set("channel", ChannelJson(orch));
  out.Set("invariants", InvariantsJson(inv));
  out.Set("sim_end_ns", clock.now());
  return out;
}

// --- Part 3: controller crash + journal replay -----------------------------------------

obs::json::Value RunControllerCrash(bool* all_converged) {
  sim::EventQueue clock;
  PlatformFleet fleet(&clock, platform::VmCostModel{},
                      OrchestratorOptions{}.platform_memory_bytes);
  DeployJournal journal;

  size_t inflight_at_crash = 0;
  {
    Orchestrator doomed(topology::Network::MakeMultiPop(kPops), &clock, OrchestratorOptions{},
                        &fleet, &journal);
    // Three tenants reach steady state; then the install path to platform1
    // is cut and two more deploys are stuck in flight when the crash hits.
    for (int i = 0; i < 3; ++i) {
      doomed.DeployViaChannel(i % 2 == 0 ? StatefulRequest(i) : StatelessRequest(i));
      clock.RunUntil(clock.now() + sim::FromSeconds(2));
    }
    doomed.SetPartitioned("platform1", true);
    for (int i = 3; i < 5; ++i) {
      ClientRequest request = i % 2 == 0 ? StatefulRequest(i) : StatelessRequest(i);
      request.pinned_platform = "platform1";
      doomed.DeployViaChannel(request);
    }
    inflight_at_crash = journal.InFlightCount();
  }  // the controller dies here; fleet + journal survive

  // The partition heals while the controller is down, then the successor
  // replays the journal.
  fleet.channel().SetPartitioned("platform1", false);
  Orchestrator successor(topology::Network::MakeMultiPop(kPops), &clock, OrchestratorOptions{},
                         &fleet, &journal);
  controller::RecoveryReport recovery = successor.RecoverFromJournal();
  clock.RunUntil(clock.now() + sim::FromSeconds(30));

  Invariants inv = CheckInvariants(successor);
  bool everyone_landed = successor.placement_count() == 5;
  *all_converged = *all_converged && inv.converged() && everyone_landed;

  std::printf("in flight at crash:       %zu\n", inflight_at_crash);
  std::printf("journal replay:           scanned=%zu adopted=%zu completed=%zu resumed=%zu "
              "rolled_back=%zu killed=%zu\n",
              recovery.scanned, recovery.adopted, recovery.completed, recovery.resumed,
              recovery.rolled_back, recovery.killed);
  std::printf("placements after replay:  %zu (of 5 requested)\n", successor.placement_count());
  std::printf("invariants converged:     %s\n", inv.converged() ? "yes" : "NO");

  obs::json::Value out = obs::json::Value::Object();
  out.Set("inflight_at_crash", static_cast<uint64_t>(inflight_at_crash));
  out.Set("scanned", static_cast<uint64_t>(recovery.scanned));
  out.Set("adopted", static_cast<uint64_t>(recovery.adopted));
  out.Set("completed", static_cast<uint64_t>(recovery.completed));
  out.Set("resumed", static_cast<uint64_t>(recovery.resumed));
  out.Set("rolled_back", static_cast<uint64_t>(recovery.rolled_back));
  out.Set("killed", static_cast<uint64_t>(recovery.killed));
  out.Set("placements_after_replay", static_cast<uint64_t>(successor.placement_count()));
  out.Set("all_tenants_landed", everyone_landed);
  out.Set("channel", ChannelJson(successor));
  out.Set("invariants", InvariantsJson(inv));
  out.Set("sim_end_ns", clock.now());
  return out;
}

}  // namespace

int main() {
  // Everything below runs on the simulated clock with seed 42; the registry
  // dump and every number in the JSON are deterministic by construction.
  obs::Registry().ResetValues();
  bool all_converged = true;

  bench::PrintHeader("Control chaos: loss sweep (dup 0.2, reorder 0.1, delay 1 ms, seed 42)");
  std::printf("%-8s %-9s %-8s %-8s %-8s %-8s %-8s %-6s %-6s\n", "loss", "accepted", "drops",
              "dups", "deduped", "retries", "giveups", "migr", "conv");
  bench::PrintRule();
  obs::json::Value sweep = obs::json::Value::Array();
  for (double loss : {0.0, 0.1, 0.25, 0.4}) {
    sweep.Push(RunLossScenario(loss, &all_converged));
  }

  bench::PrintHeader("Partition window: cut-off platform, give-ups, heal-time reconcile");
  obs::json::Value partition = RunPartitionWindow(&all_converged);

  bench::PrintHeader("Controller crash: journal replay over the surviving fleet");
  obs::json::Value crash = RunControllerCrash(&all_converged);

  std::printf("\noverall: %s\n", all_converged ? "ALL SCENARIOS CONVERGED"
                                               : "CONVERGENCE FAILURE (see above)");

  // Headline series for the CI regression gate: everything here is a seeded
  // deterministic outcome, so zero tolerance — one extra retry under the same
  // seed means the retry machinery itself changed.
  bench::BenchSeries series;
  series.Higher("all_converged", all_converged ? 1.0 : 0.0, 0.0, "bool");
  double sweep_accepted = 0;
  double sweep_retries = 0;
  double sweep_giveups = 0;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const obs::json::Value& row = sweep.at(i);
    sweep_accepted += row.Find("accepted")->number();
    const obs::json::Value* channel = row.Find("channel");
    sweep_retries += channel->Find("retries")->number();
    sweep_giveups += channel->Find("giveups")->number();
  }
  series.Higher("sweep_accepted", sweep_accepted, 0.0, "tenants");
  series.Lower("sweep_retries", sweep_retries, 0.0, "count");
  series.Lower("sweep_giveups", sweep_giveups, 0.0, "count");
  series.Higher("crash_placements_after_replay",
                crash.Find("placements_after_replay")->number(), 0.0, "count");

  obs::json::Value results = obs::json::Value::Object();
  results.Set("seed", kSeed);
  results.Set("all_converged", all_converged);
  results.Set("series", series.ToJson());
  results.Set("loss_sweep", std::move(sweep));
  results.Set("partition_window", std::move(partition));
  results.Set("controller_crash", std::move(crash));
  results.Set("metrics", obs::Registry().ToJson());
  if (!bench::WriteBenchJson("control_chaos", std::move(results))) {
    return 1;
  }
  return all_converged ? 0 : 1;
}
