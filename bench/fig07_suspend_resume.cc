// Reproduces Figure 7: suspend/resume latency for one ClickOS VM as the
// number of existing VMs grows 0 -> 200 (paper: suspend 30 -> ~90 ms,
// resume 40 -> ~100 ms). Suspend/resume is what lets stateful per-client
// processing scale past the concurrent-VM limit without breaking flows (§5).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/platform/vm.h"

namespace {

using namespace innet;
using platform::Vm;
using platform::VmKind;
using platform::VmManager;

constexpr const char* kConfig = "FromNetfront() -> IPFilter(allow all) -> ToNetfront();";

}  // namespace

int main() {
  bench::PrintHeader("Figure 7: suspend/resume one VM vs number of existing VMs");
  std::printf("%-12s %-16s %-16s\n", "# of VMs", "suspend (ms)", "resume (ms)");
  bench::PrintRule();

  for (int existing : {0, 25, 50, 75, 100, 125, 150, 175, 200}) {
    sim::EventQueue clock;
    VmManager vms(&clock, platform::VmCostModel{}, 8ull << 30);
    std::string error;
    Vm* victim = nullptr;
    for (int i = 0; i <= existing; ++i) {
      Vm* vm = vms.Create(VmKind::kClickOs, kConfig, nullptr, &error);
      if (vm == nullptr) {
        std::fprintf(stderr, "create failed: %s\n", error.c_str());
        return 1;
      }
      if (i == 0) {
        victim = vm;
      }
    }
    clock.RunUntil(sim::FromSeconds(10));  // let every guest finish booting

    sim::TimeNs start = clock.now();
    sim::TimeNs suspended_at = 0;
    vms.Suspend(victim->id(), [&] { suspended_at = clock.now(); });
    clock.RunUntil(start + sim::FromSeconds(5));
    double suspend_ms = sim::ToMillis(suspended_at - start);

    start = clock.now();
    sim::TimeNs resumed_at = 0;
    vms.Resume(victim->id(), [&] { resumed_at = clock.now(); });
    clock.RunUntil(start + sim::FromSeconds(5));
    double resume_ms = sim::ToMillis(resumed_at - start);

    std::printf("%-12d %-16.1f %-16.1f\n", existing, suspend_ms, resume_ms);
  }
  std::printf("\n(paper: ~30 -> ~90 ms suspend and ~40 -> ~100 ms resume across 0 -> 200 VMs;\n"
              " the whole cycle stays near 100 ms, fast enough to park idle stateful tenants)\n");
  return 0;
}
