// Placement scaling: 1,200 tenants across a 4-PoP platform fleet under the
// three placement policies (first_fit, least_loaded, bin_pack), with a
// mid-run Rebalance() pass that drains hot platforms through real
// suspend -> detach -> import live migrations.
//
// What is (and is not) measured: this bench drives the scheduler — admission,
// headroom-filtered policy ranking, real VM installs with real memory
// accounting on the simulated clock — but skips per-deploy SymNet
// verification. Verification cost scales with the *network* snapshot
// (Figure 10 / BENCH_fig10_controller_scaling.json tells that story), is
// O(deployments^2) when every tenant re-checks against all earlier ones, and
// would swamp the placement signal at this tenant count; re-verification
// correctness on migration is proven in tests/scheduler_test.cc instead.
//
// Everything here runs on the deterministic simulator — no wall clock enters
// the JSON, so two runs of this binary produce byte-identical
// BENCH_placement_scaling.json files.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/metrics.h"
#include "src/platform/platform.h"
#include "src/scheduler/engine.h"
#include "src/sim/event_queue.h"

namespace {

using namespace innet;
using platform::InNetPlatform;
using platform::Vm;
using platform::VmKind;

constexpr int kTenants = 1200;
constexpr int kPlatforms = 4;
constexpr uint64_t kPlatformMemory = 16ull << 30;  // 16 GB per box
constexpr int kRebalanceAt = 900;                  // deploys before the drain pass
constexpr double kHotThreshold = 0.70;
constexpr size_t kMaxMovesPerPlatform = 48;
constexpr const char* kEchoConfig = "FromNetfront() -> ToNetfront();";

// Every 10th tenant is a heavyweight Linux guest (512 MB vs 8 MB): total
// demand (~68 GB) oversubscribes the fleet (~64 GB), so the tail of the run
// probes how each policy's fill pattern fragments the remaining headroom.
VmKind TenantKind(int i) { return i % 10 == 9 ? VmKind::kLinux : VmKind::kClickOs; }

Ipv4Address TenantAddr(int i) {
  return Ipv4Address(10, static_cast<uint8_t>(100 + i / 256), static_cast<uint8_t>(i % 256), 1);
}

struct Tenant {
  int index = 0;
  int platform = -1;  // fleet slot, -1 while unplaced
  Vm::VmId vm_id = 0;
  VmKind kind = VmKind::kClickOs;
};

struct Fleet {
  sim::EventQueue clock;
  std::vector<std::unique_ptr<InNetPlatform>> boxes;
  std::vector<std::string> names;

  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

double MaxUtilization(Fleet& fleet) {
  double max_util = 0;
  for (const auto& box : fleet.boxes) {
    double util = static_cast<double>(box->vms().memory_used()) /
                  static_cast<double>(box->vms().memory_total());
    max_util = util > max_util ? util : max_util;
  }
  return max_util;
}

// Drains every platform above `threshold` by live-migrating ClickOS guests
// to the policy's pick among the cooler platforms: suspend (batched), then
// detach + import, then let the resumes land. Returns completed migrations.
size_t RebalanceFleet(Fleet* fleet, scheduler::PlacementEngine* engine,
                      std::vector<Tenant>* tenants, double threshold) {
  size_t migrations = 0;
  std::vector<scheduler::PlatformResources> snapshot = engine->ledger().Snapshot();
  for (const scheduler::PlatformResources& hot : snapshot) {
    if (hot.utilization() <= threshold) {
      continue;
    }
    int hot_index = fleet->IndexOf(hot.name);
    InNetPlatform* src = fleet->boxes[static_cast<size_t>(hot_index)].get();

    // Pick victims in tenant order: cheap ClickOS guests only (the paper's
    // suspend/resume numbers are ClickOS numbers; Linux guests would also
    // dominate the transfer).
    std::vector<Tenant*> victims;
    for (Tenant& tenant : *tenants) {
      if (tenant.platform == hot_index && tenant.vm_id != 0 &&
          tenant.kind == VmKind::kClickOs) {
        victims.push_back(&tenant);
        if (victims.size() == kMaxMovesPerPlatform) {
          break;
        }
      }
    }

    // Suspend the whole batch, then let every suspend land at once.
    for (Tenant* tenant : victims) {
      src->PrepareMigrationOut(tenant->vm_id);
      src->vms().Suspend(tenant->vm_id);
    }
    fleet->clock.RunUntil(fleet->clock.now() + sim::FromSeconds(2));

    for (Tenant* tenant : victims) {
      // Rank the cooler platforms with the active policy, with the moves of
      // this pass already visible through the live probe.
      std::vector<scheduler::PlatformResources> fresh = engine->ledger().Snapshot();
      std::vector<scheduler::PlatformResources> cool;
      for (scheduler::PlatformResources& res : fresh) {
        if (res.name != hot.name && res.utilization() <= threshold) {
          cool.push_back(std::move(res));
        }
      }
      scheduler::PlacementRequest needs;
      needs.memory_bytes = src->vms().cost_model().MemoryBytes(VmKind::kClickOs);
      std::vector<std::string> ranked = scheduler::RankPlatforms(engine->policy(), cool, needs);
      if (ranked.empty()) {
        src->CancelMigrationOut(tenant->vm_id);
        continue;
      }
      auto moved = src->DetachForMigration(tenant->vm_id);
      if (!moved) {
        src->CancelMigrationOut(tenant->vm_id);
        continue;
      }
      int target_index = fleet->IndexOf(ranked.front());
      InNetPlatform* dst = fleet->boxes[static_cast<size_t>(target_index)].get();
      std::string error;
      Vm::VmId new_vm = dst->InstallMigrated(TenantAddr(tenant->index), &moved->snapshot, &error);
      if (new_vm == 0) {
        src->InstallMigrated(TenantAddr(tenant->index), &moved->snapshot, &error);
        continue;
      }
      tenant->platform = target_index;
      tenant->vm_id = new_vm;
      ++migrations;
    }
    fleet->clock.RunUntil(fleet->clock.now() + sim::FromSeconds(2));  // resumes land
  }
  return migrations;
}

obs::json::Value RunPolicy(scheduler::PlacementPolicyKind policy) {
  Fleet fleet;
  for (int i = 0; i < kPlatforms; ++i) {
    fleet.names.push_back("pop" + std::to_string(i));
    fleet.boxes.push_back(std::make_unique<InNetPlatform>(
        &fleet.clock, platform::VmCostModel{}, kPlatformMemory));
  }
  scheduler::PlacementEngine engine(
      [&fleet](const std::string& name, scheduler::PlatformResources* out) {
        int index = fleet.IndexOf(name);
        if (index < 0) {
          return false;
        }
        InNetPlatform& box = *fleet.boxes[static_cast<size_t>(index)];
        out->memory_total = box.vms().memory_total();
        out->memory_used = box.vms().memory_used();
        out->vm_count = box.vms().vm_count();
        out->running_vms = box.vms().running_count();
        out->buffer_occupancy = box.buffer_occupancy();
        return true;
      },
      policy);
  for (const std::string& name : fleet.names) {
    engine.ledger().AddPlatform(name);
  }

  std::vector<Tenant> tenants(kTenants);
  size_t accepted = 0;
  size_t rejected = 0;
  size_t migrations = 0;
  double mid_max_util = 0;

  for (int i = 0; i < kTenants; ++i) {
    if (i == kRebalanceAt) {
      mid_max_util = MaxUtilization(fleet);
      migrations = RebalanceFleet(&fleet, &engine, &tenants, kHotThreshold);
    }
    Tenant& tenant = tenants[static_cast<size_t>(i)];
    tenant.index = i;
    tenant.kind = TenantKind(i);
    const std::string client = "tenant" + std::to_string(i);
    const uint64_t need =
        fleet.boxes[0]->vms().cost_model().MemoryBytes(tenant.kind);

    scheduler::PlacementRequest request;
    request.memory_bytes = need;
    scheduler::PlacementDecision decision = engine.Decide(client, request);
    if (!decision.admitted) {
      ++rejected;
      continue;
    }
    bool placed = false;
    for (const std::string& candidate : decision.candidates) {
      int index = fleet.IndexOf(candidate);
      std::string error;
      Vm::VmId vm = fleet.boxes[static_cast<size_t>(index)]->Install(
          TenantAddr(i), kEchoConfig, &error, tenant.kind);
      if (vm != 0) {
        tenant.platform = index;
        tenant.vm_id = vm;
        engine.CommitPlacement(client, need);
        placed = true;
        break;
      }
    }
    placed ? ++accepted : ++rejected;
    if (i % 100 == 99) {
      fleet.clock.RunUntil(fleet.clock.now() + sim::FromSeconds(1));  // boots land
    }
  }
  fleet.clock.RunUntil(fleet.clock.now() + sim::FromSeconds(10));
  engine.ledger().ExportHeadroomGauges();

  obs::json::Value row = obs::json::Value::Object();
  row.Set("policy", scheduler::PlacementPolicyName(policy));
  row.Set("tenants", kTenants);
  row.Set("accepted", static_cast<uint64_t>(accepted));
  row.Set("rejected", static_cast<uint64_t>(rejected));
  row.Set("acceptance_rate", static_cast<double>(accepted) / kTenants);
  row.Set("max_memory_utilization", MaxUtilization(fleet));
  row.Set("max_memory_utilization_before_rebalance", mid_max_util);
  row.Set("migrations_performed", static_cast<uint64_t>(migrations));
  obs::json::Value per_platform = obs::json::Value::Array();
  for (int i = 0; i < kPlatforms; ++i) {
    InNetPlatform& box = *fleet.boxes[static_cast<size_t>(i)];
    obs::json::Value entry = obs::json::Value::Object();
    entry.Set("platform", fleet.names[static_cast<size_t>(i)]);
    entry.Set("vms", static_cast<uint64_t>(box.vms().vm_count()));
    entry.Set("memory_used_bytes", box.vms().memory_used());
    entry.Set("utilization", static_cast<double>(box.vms().memory_used()) /
                                 static_cast<double>(box.vms().memory_total()));
    per_platform.Push(std::move(entry));
  }
  row.Set("per_platform", std::move(per_platform));

  std::printf("%-14s %-10zu %-10zu %-12.3f %-12.3f %-12zu\n",
              scheduler::PlacementPolicyName(policy), accepted, rejected,
              static_cast<double>(accepted) / kTenants, MaxUtilization(fleet), migrations);
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader("Placement scaling: 1,200 tenants, 4 platforms, 3 policies");
  std::printf("every 10th tenant is a 512 MB Linux guest; fleet capacity 4 x 16 GB;\n"
              "Rebalance() drains platforms above %.0f%% utilization after %d deploys\n\n",
              kHotThreshold * 100, kRebalanceAt);
  std::printf("%-14s %-10s %-10s %-12s %-12s %-12s\n", "policy", "accepted", "rejected",
              "accept-rate", "max-util", "migrations");
  bench::PrintRule();

  obs::json::Value rows = obs::json::Value::Array();
  for (scheduler::PlacementPolicyKind policy :
       {scheduler::PlacementPolicyKind::kFirstFit, scheduler::PlacementPolicyKind::kLeastLoaded,
        scheduler::PlacementPolicyKind::kBinPack}) {
    rows.Push(RunPolicy(policy));
  }

  std::printf("\nShape check: least_loaded should show the lowest pre-rebalance peak\n"
              "utilization (it spreads) and need no migrations; first_fit and bin_pack\n"
              "fill platform-by-platform and pay for it in the drain pass.\n");

  // Headline series for the CI regression gate (innet_benchdiff): all values
  // are deterministic placement outcomes, so the tolerances are tight —
  // any drift is a behavior change, not noise.
  bench::BenchSeries series;
  for (size_t i = 0; i < rows.size(); ++i) {
    const obs::json::Value& row = rows.at(i);
    const std::string& policy = row.Find("policy")->string_value();
    series.Higher(policy + "_accepted", row.Find("accepted")->number(), 0.0, "tenants");
    series.Lower(policy + "_max_util", row.Find("max_memory_utilization")->number(), 0.0,
                 "ratio");
    series.Lower(policy + "_migrations", row.Find("migrations_performed")->number(), 0.0,
                 "count");
  }

  obs::json::Value results = obs::json::Value::Object();
  results.Set("policies", std::move(rows));
  results.Set("series", series.ToJson());
  results.Set("metrics", obs::Registry().ToJson());
  bench::WriteBenchJson("placement_scaling", std::move(results));
  return 0;
}
