// Ablation (DESIGN.md §5): when should per-client VMs exist?
//   pre-boot      — one VM per registered client, always running (memory for
//                   everyone, no first-packet penalty);
//   on-demand     — boot when the first packet arrives (§5's mechanism:
//                   memory only for the *active* set, ~30-100 ms first-packet
//                   penalty);
//   on-demand + idle suspend — additionally park guests idle for 60 s, so
//                   long-lived-but-quiet tenants cost suspended-image memory
//                   and a ~100 ms resume instead of a running guest.
// The workload is MAWI-like: 2,000 registered clients, ~400 active at once.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/platform/platform.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace {

using namespace innet;
using platform::InNetPlatform;
using platform::VmCostModel;
using platform::VmKind;

constexpr int kClients = 2000;
constexpr int kActive = 400;
constexpr double kWindowSec = 300;
constexpr const char* kConfig =
    "FromNetfront() -> IPFilter(allow udp, allow tcp) -> ToNetfront();";

enum class Strategy { kPreBoot, kOnDemand, kOnDemandIdleSuspend };

struct Result {
  double peak_memory_gb = 0;
  double running_vms_at_end = 0;
  double first_packet_ms_mean = 0;
  double later_packet_loss = 0;
};

Ipv4Address ClientAddr(int i) {
  return Ipv4Address(Ipv4Address::MustParse("172.16.0.0").value() + 10 +
                     static_cast<uint32_t>(i));
}

Result Run(Strategy strategy) {
  Result result;
  sim::EventQueue clock;
  InNetPlatform platform(&clock, VmCostModel{}, 64ull << 30);
  std::string error;

  if (strategy == Strategy::kPreBoot) {
    for (int i = 0; i < kClients; ++i) {
      if (platform.Install(ClientAddr(i), kConfig, &error) == 0) {
        std::fprintf(stderr, "install failed: %s\n", error.c_str());
        std::exit(1);
      }
    }
  } else {
    for (int i = 0; i < kClients; ++i) {
      platform.RegisterOnDemand(ClientAddr(i), kConfig, VmKind::kClickOs,
                                /*per_flow=*/false);
    }
    if (strategy == Strategy::kOnDemandIdleSuspend) {
      platform.EnableIdleSuspend(sim::FromSeconds(60));
    }
  }

  // Active clients send a packet every ~2 s; each active slot rotates to a
  // new client every ~50 s (churn). First-packet latency = send-to-egress.
  sim::Rng rng(5);
  sim::Samples first_packet_ms;
  std::vector<sim::TimeNs> sent_at(kClients, 0);
  std::vector<bool> saw_first(kClients, false);
  platform.SetEgressHandler([&](Packet& packet) {
    int client = static_cast<int>(packet.ip_dst().value() -
                                  Ipv4Address::MustParse("172.16.0.0").value() - 10);
    if (client >= 0 && client < kClients && !saw_first[static_cast<size_t>(client)]) {
      saw_first[static_cast<size_t>(client)] = true;
      first_packet_ms.Add(sim::ToMillis(clock.now() - sent_at[static_cast<size_t>(client)]));
    }
  });

  std::vector<int> active(kActive);
  for (int slot = 0; slot < kActive; ++slot) {
    active[static_cast<size_t>(slot)] = slot;
  }
  int next_client = kActive;
  uint64_t peak_memory = 0;
  for (double t = 1; t < kWindowSec; t += 2) {
    clock.ScheduleAt(sim::FromSeconds(t), [&, t] {
      for (int slot = 0; slot < kActive; ++slot) {
        // Churn: replace this slot's client occasionally.
        if (rng.Bernoulli(2.0 / 50.0)) {
          active[static_cast<size_t>(slot)] = next_client;
          next_client = (next_client + 1) % kClients;
        }
        int client = active[static_cast<size_t>(slot)];
        if (sent_at[static_cast<size_t>(client)] == 0) {
          sent_at[static_cast<size_t>(client)] = clock.now();
        }
        Packet p = Packet::MakeUdp(Ipv4Address::MustParse("9.9.9.9"), ClientAddr(client),
                                   5000, 80, 64);
        platform.HandlePacket(p);
      }
      peak_memory = std::max(peak_memory, platform.vms().memory_used());
    });
  }
  clock.RunUntil(sim::FromSeconds(kWindowSec));

  result.peak_memory_gb = static_cast<double>(peak_memory) / (1ull << 30);
  result.running_vms_at_end = static_cast<double>(platform.vms().running_count());
  result.first_packet_ms_mean = first_packet_ms.Mean();
  return result;
}

const char* Name(Strategy s) {
  switch (s) {
    case Strategy::kPreBoot:
      return "pre-boot all";
    case Strategy::kOnDemand:
      return "on-demand";
    case Strategy::kOnDemandIdleSuspend:
      return "on-demand + idle-suspend";
  }
  return "?";
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: VM provisioning strategy (2,000 registered, ~400 active)");
  std::printf("%-28s %-18s %-16s %-22s\n", "strategy", "peak mem (GB)", "running VMs",
              "first-packet (ms)");
  bench::PrintRule();
  for (Strategy strategy :
       {Strategy::kPreBoot, Strategy::kOnDemand, Strategy::kOnDemandIdleSuspend}) {
    Result r = Run(strategy);
    std::printf("%-28s %-18.2f %-16.0f %-22.1f\n", Name(strategy), r.peak_memory_gb,
                r.running_vms_at_end, r.first_packet_ms_mean);
  }
  std::printf("\n(the ablation shows why §5 needs BOTH mechanisms: under client churn,\n"
              " on-demand boot alone converges to pre-boot's footprint — every client\n"
              " eventually activates and its guest lingers. Idle suspend is what bounds\n"
              " the running set near active-clients + churn*timeout, paying a ~100 ms\n"
              " resume on reactivation)\n");
  return 0;
}
