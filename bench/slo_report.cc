// SLO health report: demonstrates the per-tenant health monitor driving
// control-plane decisions. Not a paper figure — this harness exercises the
// observability loop added on top of the §5/§6 prototype:
//
//   1. Four stateful tenants pack onto one platform (first-fit, 32 MiB box).
//   2. A fault phase crashes one tenant's guest repeatedly and another's
//      once; the watchdog restarts them and the SLO evaluator walks the
//      victims through ok -> degraded -> violated on the restart clause.
//   3. Two guests crash in the same sweep window: the watchdog recovers the
//      violated tenant's guest first even though the healthy tenant's guest
//      has the lower (default-order) VM id.
//   4. Rebalance() drains the hot platform and moves the violated tenant
//      first, the degraded one second — health orders the drain, not
//      module-id order.
//
// Everything runs on the simulated clock with the tracer enabled, so the
// health transitions land in the trace and the whole report is
// byte-identical across runs.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/orchestrator.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/platform/watchdog.h"
#include "src/sim/event_queue.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

constexpr int kTenants = 4;

controller::ClientRequest MeterRequest(const std::string& client_id) {
  // Stateful but statically safe: FlowMeter forces a dedicated (migratable)
  // VM, and the config passes the Table 1 checks for plain clients.
  controller::ClientRequest request;
  request.client_id = client_id;
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - 10.10.0.5 - 0 0) "
      "-> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  return request;
}

std::string TenantName(int i) { return "tenant" + std::to_string(i); }

}  // namespace

int main() {
  bench::PrintHeader("SLO health monitor: states drive watchdog and rebalance order");

  sim::EventQueue clock;
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });
  obs::Health().Enable();

  controller::OrchestratorOptions options;
  options.platform_memory_bytes = 32ull << 20;  // 4 ClickOS guests per box
  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);

  // First-fit packs all four stateful tenants onto platform1 -> 100% full.
  std::vector<std::string> module_ids(kTenants);
  std::vector<platform::Vm::VmId> vm_ids(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    auto result = orch.Deploy(MeterRequest(TenantName(i)));
    if (!result.outcome.accepted || result.outcome.platform != "platform1") {
      std::fprintf(stderr, "deploy %d failed: %s\n", i, result.outcome.reason.c_str());
      return 1;
    }
    module_ids[i] = result.outcome.module_id;
    vm_ids[i] = result.vm_id;
  }
  platform::InNetPlatform* box = orch.platform("platform1");
  box->EnableWatchdog();
  clock.RunUntil(clock.now() + sim::FromSeconds(1));

  // Track every health transition the evaluator makes.
  std::map<std::string, obs::HealthState> last_state;
  obs::json::Value timeline = obs::json::Value::Array();
  auto evaluate = [&] {
    obs::Health().EvaluateAll();
    for (int i = 0; i < kTenants; ++i) {
      std::string tenant = TenantName(i);
      obs::HealthState state = obs::Health().CurrentState(tenant);
      auto it = last_state.find(tenant);
      if (it == last_state.end() || it->second != state) {
        std::printf("t=%7.3f s  %-10s %s -> %s\n", sim::ToSeconds(clock.now()),
                    tenant.c_str(),
                    it == last_state.end() ? "unknown" : obs::HealthStateName(it->second),
                    obs::HealthStateName(state));
        obs::json::Value row = obs::json::Value::Object();
        row.Set("t_ms", sim::ToMillis(clock.now()));
        row.Set("tenant", tenant);
        row.Set("state", obs::HealthStateName(state));
        timeline.Push(std::move(row));
        last_state[tenant] = state;
      }
    }
  };
  evaluate();  // everyone starts ok

  // Fault phase: tenant3's guest crashes three times (restarts >= 3 ->
  // violated), tenant1's once (restarts >= 1 -> degraded). The watchdog
  // restarts each within ~100 ms of simulated time.
  bench::PrintRule();
  for (int episode = 0; episode < 3; ++episode) {
    box->vms().Crash(vm_ids[3]);
    if (episode == 0) {
      box->vms().Crash(vm_ids[1]);
    }
    clock.RunUntil(clock.now() + sim::FromSeconds(1));
    evaluate();
  }

  // Watchdog ordering: crash the healthy tenant0's guest (lowest VM id) and
  // the violated tenant3's guest in the same sweep window. Severity beats VM
  // id order: tenant3's guest restarts first.
  bench::PrintRule();
  const sim::TimeNs mark = clock.now();
  box->vms().Crash(vm_ids[0]);
  box->vms().Crash(vm_ids[3]);
  clock.RunUntil(clock.now() + sim::FromSeconds(1));
  evaluate();
  obs::json::Value restart_order = obs::json::Value::Array();
  std::printf("watchdog restart order after double crash:\n");
  for (const obs::TraceEvent& event : obs::Tracer().events()) {
    if (event.kind != obs::EventKind::kVmRestart || event.time_ns < mark) {
      continue;
    }
    for (int i = 0; i < kTenants; ++i) {
      if (event.target == "vm:" + std::to_string(vm_ids[i])) {
        std::printf("  t=%7.3f s  %s (%s, vm %llu)\n", sim::ToSeconds(event.time_ns),
                    TenantName(i).c_str(),
                    obs::HealthStateName(obs::Health().CurrentState(TenantName(i))),
                    static_cast<unsigned long long>(vm_ids[i]));
        restart_order.Push(TenantName(i));
      }
    }
  }

  // Rebalance: platform1 sits at 100% utilization; draining to <= 70% takes
  // two moves. Health orders them: violated tenant3 first, degraded tenant1
  // second — module-id order alone would have moved tenant0 first.
  bench::PrintRule();
  controller::RebalanceReport report = orch.Rebalance(/*drain_above_utilization=*/0.7);
  clock.RunUntil(clock.now() + sim::FromSeconds(2));
  std::printf("rebalance: %zu hot platform(s), %zu migration(s)\n", report.hot_platforms,
              report.migrations_started);
  obs::json::Value moves = obs::json::Value::Array();
  for (const auto& [module_id, target] : report.moves) {
    std::string tenant = "?";
    for (int i = 0; i < kTenants; ++i) {
      if (module_ids[i] == module_id) {
        tenant = TenantName(i);
      }
    }
    std::printf("  move %-10s (%s) -> %s\n", tenant.c_str(),
                obs::HealthStateName(obs::Health().CurrentState(tenant)), target.c_str());
    obs::json::Value row = obs::json::Value::Object();
    row.Set("tenant", tenant);
    row.Set("module_id", module_id);
    row.Set("target", target);
    row.Set("state", obs::HealthStateName(obs::Health().CurrentState(tenant)));
    moves.Push(std::move(row));
  }

  bench::PrintRule();
  std::printf("final states: ");
  for (int i = 0; i < kTenants; ++i) {
    std::printf("%s=%s ", TenantName(i).c_str(),
                obs::HealthStateName(obs::Health().CurrentState(TenantName(i))));
  }
  std::printf("\n");

  obs::json::Value results = obs::json::Value::Object();
  results.Set("timeline", std::move(timeline));
  results.Set("restart_order", std::move(restart_order));
  results.Set("moves", std::move(moves));
  results.Set("boot_latency_tenant3",
              bench::HistogramSummaryJson(*obs::Registry().GetHistogram(
                  "innet_tenant_boot_latency_ms", {{"tenant", "tenant3"}},
                  obs::ExponentialBuckets(0.5, 2.0, 14))));
  results.Set("health", obs::Health().ToJson());
  bench::WriteBenchJson("slo_report", std::move(results));
  return 0;
}
