// Reproduces Figure 6: "100 concurrent HTTP clients retrieving a 50 MB file
// through an In-Net platform at 25 Mb/s each." Connection setup includes the
// on-the-fly VM boot (triggered by the SYN); the transfer is rate-capped by
// the per-client shaper, so total time lands around the paper's 16.6-17.8 s.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/platform/platform.h"
#include "src/sim/stats.h"

namespace {

using namespace innet;
using platform::InNetPlatform;

constexpr const char* kForwarderConfig =
    "FromNetfront() -> IPFilter(allow tcp) -> ToNetfront();";
constexpr int kClients = 100;
constexpr double kFileBytes = 50e6;
constexpr double kRateBps = 25e6;

}  // namespace

int main() {
  sim::EventQueue clock;
  InNetPlatform platform(&clock, platform::VmCostModel{}, 16ull << 30);
  const Ipv4Address service = Ipv4Address::MustParse("172.16.3.10");
  platform.RegisterOnDemand(service, kForwarderConfig, platform::VmKind::kClickOs,
                            /*per_flow=*/true);

  const sim::TimeNs link_latency = sim::FromMillis(0.2);
  struct FlowState {
    sim::TimeNs syn_sent = 0;
    sim::TimeNs connected_at = 0;
    sim::TimeNs done_at = 0;
  };
  std::vector<FlowState> flows(kClients);

  // The platform egress means the SYN made it through (VM booted + rules
  // installed): the server answers, the client connects, and the fixed-rate
  // transfer runs. Subsequent data packets are modeled fluidly.
  platform.SetEgressHandler([&](Packet& packet) {
    if ((packet.tcp_flags() & kTcpSyn) == 0) {
      return;
    }
    int flow = packet.src_port() - 10000;
    if (flow < 0 || flow >= kClients || flows[static_cast<size_t>(flow)].connected_at != 0) {
      return;
    }
    clock.ScheduleAfter(3 * link_latency, [&flows, flow, &clock] {  // SYN-ACK + ACK
      FlowState& state = flows[static_cast<size_t>(flow)];
      state.connected_at = clock.now();
      sim::TimeNs transfer = sim::FromSeconds(kFileBytes * 8 / kRateBps);
      clock.ScheduleAfter(transfer, [&state, &clock] { state.done_at = clock.now(); });
    });
  });

  for (int flow = 0; flow < kClients; ++flow) {
    clock.ScheduleAt(sim::FromMillis(0.05 * flow), [&, flow] {
      flows[static_cast<size_t>(flow)].syn_sent = clock.now();
      Packet syn = Packet::MakeTcp(Ipv4Address::MustParse("10.10.0.5"), service,
                                   static_cast<uint16_t>(10000 + flow), 80, kTcpSyn);
      clock.ScheduleAfter(link_latency, [&platform, syn]() mutable {
        Packet p = syn;
        platform.HandlePacket(p);
      });
    });
  }
  clock.RunUntil(sim::FromSeconds(60));

  bench::PrintHeader("Figure 6: 100 HTTP clients, 50 MB @ 25 Mb/s through the platform");
  std::printf("%-8s %-20s %-20s %-20s\n", "flow", "connect (ms)", "transfer (s)",
              "total (s)");
  bench::PrintRule();
  sim::Samples connects;
  sim::Samples totals;
  for (int flow = 0; flow < kClients; ++flow) {
    const FlowState& state = flows[static_cast<size_t>(flow)];
    if (state.done_at == 0) {
      std::printf("%-8d did not finish\n", flow);
      continue;
    }
    double connect_ms = sim::ToMillis(state.connected_at - state.syn_sent);
    double transfer_s = sim::ToSeconds(state.done_at - state.connected_at);
    double total_s = sim::ToSeconds(state.done_at - state.syn_sent);
    connects.Add(connect_ms);
    totals.Add(total_s);
    if (flow % 10 == 0 || flow == kClients - 1) {
      std::printf("%-8d %-20.1f %-20.2f %-20.2f\n", flow, connect_ms, transfer_s, total_s);
    }
  }
  bench::PrintRule();
  std::printf("connection time: mean %.1f ms, min %.1f, max %.1f "
              "(paper: grows ~50 -> ~350 ms with flow id)\n",
              connects.Mean(), connects.Min(), connects.Max());
  std::printf("total transfer time: %.2f - %.2f s (paper: 16.6 - 17.8 s)\n", totals.Min(),
              totals.Max());
  return 0;
}
