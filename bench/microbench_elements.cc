// Google-benchmark microbenchmarks for the building blocks behind the
// headline figures: per-element packet costs (what Figures 8/11/12 are made
// of) and symbolic-execution primitives (what Figure 10 is made of).
#include <benchmark/benchmark.h>

#include "src/click/graph.h"
#include "src/controller/security.h"
#include "src/policy/reach_checker.h"
#include "src/policy/reach_spec.h"
#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

Packet TestPacket() {
  return Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                         Ipv4Address::MustParse("172.16.3.10"), 5000, 1500, 64);
}

void RunElementBench(benchmark::State& state, const char* config) {
  std::string error;
  auto graph = click::Graph::FromText(config, &error);
  if (graph == nullptr) {
    state.SkipWithError(error.c_str());
    return;
  }
  Packet tmpl = TestPacket();
  for (auto _ : state) {
    Packet p = tmpl;
    graph->InjectAtSource(p);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Element_Forward(benchmark::State& state) {
  RunElementBench(state, "FromNetfront() -> ToNetfront();");
}
BENCHMARK(BM_Element_Forward);

void BM_Element_IPFilter(benchmark::State& state) {
  RunElementBench(state,
                  "FromNetfront() -> IPFilter(allow udp dst port 1500) -> ToNetfront();");
}
BENCHMARK(BM_Element_IPFilter);

void BM_Element_IPRewriter(benchmark::State& state) {
  RunElementBench(
      state, "FromNetfront() -> IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();");
}
BENCHMARK(BM_Element_IPRewriter);

void BM_Element_NatRewriter(benchmark::State& state) {
  RunElementBench(state,
                  "src :: FromNetfront(); nat :: NatRewriter(PUBLIC 100.64.0.1);"
                  "out :: ToNetfront(); src -> nat; nat[0] -> out;");
}
BENCHMARK(BM_Element_NatRewriter);

void BM_Element_ChangeEnforcer(benchmark::State& state) {
  RunElementBench(state,
                  "src :: FromNetfront(); enf :: ChangeEnforcer(ALLOW 10.10.0.5);"
                  "out :: ToNetfront(); src -> enf; enf[0] -> out;");
}
BENCHMARK(BM_Element_ChangeEnforcer);

void BM_Element_CheckIPHeader(benchmark::State& state) {
  RunElementBench(state, "FromNetfront() -> CheckIPHeader() -> ToNetfront();");
}
BENCHMARK(BM_Element_CheckIPHeader);

// Demux cost vs branch count: the mechanism behind Figure 8's knee.
void BM_ClassifierDemux(benchmark::State& state) {
  int branches = static_cast<int>(state.range(0));
  std::string patterns;
  for (int i = 0; i < branches; ++i) {
    if (i > 0) {
      patterns += ", ";
    }
    patterns +=
        "dst host " +
        Ipv4Address(Ipv4Address::MustParse("172.16.0.10").value() + static_cast<uint32_t>(i))
            .ToString();
  }
  std::string config = "src :: FromNetfront(); demux :: IPClassifier(" + patterns +
                       "); out :: ToNetfront(); src -> demux; demux[" +
                       std::to_string(branches - 1) + "] -> out;";
  std::string error;
  auto graph = click::Graph::FromText(config, &error);
  if (graph == nullptr) {
    state.SkipWithError(error.c_str());
    return;
  }
  // Worst case: the packet matches the last branch.
  Packet tmpl = Packet::MakeUdp(
      Ipv4Address::MustParse("8.8.8.8"),
      Ipv4Address(Ipv4Address::MustParse("172.16.0.10").value() +
                  static_cast<uint32_t>(branches - 1)),
      5000, 80, 64);
  for (auto _ : state) {
    Packet p = tmpl;
    graph->InjectAtSource(p);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifierDemux)->Arg(8)->Arg(32)->Arg(128)->Arg(252);

// Symbolic execution primitives (Figure 10's inner loop).
void BM_SecurityCheck_Batcher(benchmark::State& state) {
  std::string error;
  auto config = click::ConfigGraph::Parse(
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> TimedUnqueue(120,100) -> ToNetfront();",
      &error);
  controller::SecurityOptions options;
  options.module_addr = Ipv4Address::MustParse("172.16.3.10");
  options.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  for (auto _ : state) {
    auto report = controller::CheckModuleSecurity(*config, options, &error);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SecurityCheck_Batcher);

void BM_ReachCheck_Figure3(benchmark::State& state) {
  topology::Network network = topology::Network::MakeFigure3();
  symexec::SymGraph graph = network.BuildSymGraph();
  auto spec = policy::ReachSpec::Parse(
      "reach from internet tcp src port 80 -> http_optimizer -> client", nullptr);
  policy::NodeResolver resolver = [&network](const std::string& name)
      -> std::vector<std::string> {
    if (name == "internet") {
      return {"internet"};
    }
    if (name == "client") {
      return {"clients"};
    }
    if (network.Find(name) != nullptr) {
      return {name};
    }
    return {};
  };
  policy::ReachChecker checker(&graph, resolver);
  for (auto _ : state) {
    auto result = checker.Check(*spec);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ReachCheck_Figure3);

void BM_BuildSymGraph_256Boxes(benchmark::State& state) {
  topology::Network network = topology::Network::MakeScalingTopology(256);
  for (auto _ : state) {
    symexec::SymGraph graph = network.BuildSymGraph();
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_BuildSymGraph_256Boxes);

}  // namespace

BENCHMARK_MAIN();
