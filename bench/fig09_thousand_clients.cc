// Reproduces Figure 9: "Throughput when a box has up to 1,000 clients with
// different numbers of VMs and clients per VM." Each client downloads at
// 8 Mb/s; the n-th client triggers a new consolidated VM; all VMs share one
// core. Cumulative throughput ramps to ~8 Gb/s at 1,000 clients.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/throughput_util.h"
#include "src/platform/consolidation.h"

namespace {

using namespace innet;
using platform::ConsolidateTenants;
using platform::TenantConfig;

constexpr double kFrameBytes = 1500;
constexpr double kPerClientBps = 8e6;

// Builds `n_vms` consolidated graphs with `per_vm` firewall tenants each.
struct Fleet {
  std::vector<std::unique_ptr<click::Graph>> graphs;
  std::vector<std::vector<Packet>> templates;
};

bool BuildFleet(int clients, int per_vm, Fleet* fleet, std::string* error) {
  int built = 0;
  while (built < clients) {
    int count = std::min(per_vm, clients - built);
    std::vector<TenantConfig> tenants;
    std::vector<Packet> packets;
    for (int i = 0; i < count; ++i) {
      TenantConfig tenant;
      tenant.addr = Ipv4Address(Ipv4Address::MustParse("172.16.0.0").value() + 10 +
                                static_cast<uint32_t>(built + i));
      tenant.config_text =
          "FromNetfront() -> IPFilter(allow tcp, allow udp) -> ToNetfront();";
      tenants.push_back(tenant);
      packets.push_back(Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"), tenant.addr, 5000,
                                        80, static_cast<size_t>(kFrameBytes) - 42));
    }
    auto merged = ConsolidateTenants(tenants, error);
    if (!merged) {
      return false;
    }
    auto graph = click::Graph::Build(*merged, error);
    if (graph == nullptr) {
      return false;
    }
    fleet->graphs.push_back(std::move(graph));
    fleet->templates.push_back(std::move(packets));
    built += count;
  }
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9: cumulative throughput, up to 1,000 clients on one core");
  std::printf("%-10s", "#clients");
  for (int per_vm : {50, 100, 200}) {
    std::printf(" %4d/VM (Gbit/s)", per_vm);
  }
  std::printf("\n");
  bench::PrintRule();

  for (int clients = 100; clients <= 1000; clients += 100) {
    std::printf("%-10d", clients);
    for (int per_vm : {50, 100, 200}) {
      Fleet fleet;
      std::string error;
      if (!BuildFleet(clients, per_vm, &fleet, &error)) {
        std::fprintf(stderr, "fleet build failed: %s\n", error.c_str());
        return 1;
      }
      std::vector<click::Graph*> raw;
      for (auto& graph : fleet.graphs) {
        raw.push_back(graph.get());
      }
      double pps = bench::MeasureAggregatePps(raw, fleet.templates, 0.06);
      double capacity_gbps =
          std::min(pps * kFrameBytes * 8, bench::kLineRateBps) / 1e9;
      // Clients offer 8 Mb/s each; the platform delivers the smaller of the
      // offered load and the single-core capacity.
      double offered_gbps = clients * kPerClientBps / 1e9;
      double delivered = std::min(offered_gbps, capacity_gbps);
      std::printf(" %15.2f", delivered);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: throughput ramps linearly with clients and reaches ~8 Gb/s at 1,000\n"
              " clients for every clients-per-VM split, all VMs pinned to one core)\n");
  return 0;
}
