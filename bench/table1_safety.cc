// Reproduces Table 1: "Running SYMNET to check middlebox safety gives
// accurate results." Twelve middlebox configurations are checked for each
// requester class; the expected verdicts are the paper's (X = rejected,
// OK = safe, OK(s) = runs sandboxed).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/security.h"
#include "src/controller/stock_modules.h"

namespace {

using namespace innet;
using namespace innet::controller;

struct Row {
  std::string name;
  std::string config;
  Verdict expected_third_party;
  Verdict expected_client;
  Verdict expected_operator;
};

const char* Cell(Verdict v) {
  switch (v) {
    case Verdict::kSafe:
      return "  OK ";
    case Verdict::kNeedsSandbox:
      return "OK(s)";
    case Verdict::kRejected:
      return "  X  ";
  }
  return "  ?  ";
}

}  // namespace

int main() {
  bench::PrintHeader("Table 1: SymNet middlebox safety checking");
  std::printf("(paper: X = request denied, OK = safe, OK(s) = needs runtime sandbox)\n\n");

  const Ipv4Address module_addr = Ipv4Address::MustParse("172.16.3.10");
  const Ipv4Address client_addr = Ipv4Address::MustParse("10.10.0.5");
  const Ipv4Address replica_addr = Ipv4Address::MustParse("10.10.0.6");
  const Ipv4Address origin = Ipv4Address::MustParse("5.5.5.5");
  const Ipv4Address tunnel_remote = Ipv4Address::MustParse("7.7.7.7");
  const Ipv4Prefix owned = Ipv4Prefix::MustParse("10.10.0.0/24");

  std::vector<Row> rows;
  rows.push_back({"IP Router",
                  "src :: FromNetfront(); rt :: LinearIPLookup(0.0.0.0/1 0, 128.0.0.0/1 1);"
                  "a :: ToNetfront(); b :: ToNetfront(); src -> rt; rt[0] -> a; rt[1] -> b;",
                  Verdict::kRejected, Verdict::kRejected, Verdict::kSafe});
  rows.push_back({"DPI",
                  "src :: FromNetfront(); dpi :: ContentMatch(EXPLOIT);"
                  "pass :: ToNetfront(); alert :: Discard();"
                  "src -> dpi; dpi[0] -> pass; dpi[1] -> alert;",
                  Verdict::kRejected, Verdict::kRejected, Verdict::kSafe});
  rows.push_back({"NAT",
                  "outb :: FromNetfront(); inb :: FromNetfront();"
                  "nat :: NatRewriter(PUBLIC 172.16.3.10);"
                  "wan :: ToNetfront(); lan :: ToNetfront();"
                  "outb -> nat; nat[0] -> wan; inb -> [1]nat; nat[1] -> lan;",
                  Verdict::kRejected, Verdict::kRejected, Verdict::kSafe});
  rows.push_back({"Transparent Proxy",
                  "FromNetfront() -> TransparentProxy() -> ToNetfront();",
                  Verdict::kRejected, Verdict::kRejected, Verdict::kSafe});
  rows.push_back({"Flow meter",
                  "FromNetfront() -> FlowMeter() ->"
                  "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();",
                  Verdict::kSafe, Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"Rate limiter",
                  "FromNetfront() -> RateLimiter(8000000) ->"
                  "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();",
                  Verdict::kSafe, Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"Firewall",
                  "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
                  "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();",
                  Verdict::kSafe, Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"Tunnel", SubstituteSelf(StockTunnel(tunnel_remote, owned), module_addr),
                  Verdict::kNeedsSandbox, Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"Multicast",
                  "src :: FromNetfront(); t :: Tee(2);"
                  "a :: ToNetfront(); b :: ToNetfront();"
                  "src -> t; t[0] -> SetIPDst(10.10.0.5) -> a;"
                  "t[1] -> SetIPDst(10.10.0.6) -> b;",
                  Verdict::kSafe, Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"DNS Server (stock)", SubstituteSelf(StockDnsServer(), module_addr),
                  Verdict::kSafe, Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"Reverse proxy (stock)",
                  SubstituteSelf(StockReverseProxy(origin), module_addr), Verdict::kSafe,
                  Verdict::kSafe, Verdict::kSafe});
  rows.push_back({"x86 VM", StockX86Vm(), Verdict::kNeedsSandbox, Verdict::kNeedsSandbox,
                  Verdict::kSafe});

  std::printf("%-24s %-12s %-12s %-12s  match?\n", "Functionality", "Third-party", "Client",
              "Operator");
  innet::bench::PrintRule();

  int mismatches = 0;
  for (const Row& row : rows) {
    std::string error;
    auto config = click::ConfigGraph::Parse(row.config, &error);
    if (!config) {
      std::printf("%-24s PARSE ERROR: %s\n", row.name.c_str(), error.c_str());
      ++mismatches;
      continue;
    }
    Verdict verdicts[3];
    RequesterClass classes[3] = {RequesterClass::kThirdParty, RequesterClass::kClient,
                                 RequesterClass::kOperator};
    for (int i = 0; i < 3; ++i) {
      SecurityOptions options;
      options.requester = classes[i];
      options.module_addr = module_addr;
      options.whitelist = {client_addr, replica_addr, origin, tunnel_remote};
      options.owned_prefixes = {owned};
      verdicts[i] = CheckModuleSecurity(*config, options, &error).verdict;
    }
    bool match = verdicts[0] == row.expected_third_party &&
                 verdicts[1] == row.expected_client && verdicts[2] == row.expected_operator;
    if (!match) {
      ++mismatches;
    }
    std::printf("%-24s %-12s %-12s %-12s  %s\n", row.name.c_str(), Cell(verdicts[0]),
                Cell(verdicts[1]), Cell(verdicts[2]), match ? "yes" : "NO");
  }

  innet::bench::PrintRule();
  std::printf("Rows matching the paper's Table 1: %zu/%zu\n", rows.size() - mismatches,
              rows.size());
  return mismatches == 0 ? 0 : 1;
}
