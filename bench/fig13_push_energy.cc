// Reproduces Figure 13 ("Mobiles save energy when an In-Net platform batches
// push traffic into larger intervals") plus the §8 HTTP-vs-HTTPS energy
// table. The batcher is the paper's Figure 4 module running for real: UDP
// notifications arrive every 30 s and a TimedUnqueue releases them at the
// configured interval; the device radio model integrates the wake-ups.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/energy/radio_model.h"

namespace {

using namespace innet;

// Runs the batcher module in simulated time and returns the instants at
// which batched notifications reach the device.
std::vector<double> DeviceWakeups(double batch_interval_sec, double window_sec) {
  sim::EventQueue clock;
  std::string error;
  std::string config =
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0)"
      "-> TimedUnqueue(" +
      std::to_string(batch_interval_sec) +
      ",100)"
      "-> dst :: ToNetfront();";
  auto graph = click::Graph::FromText(config, &error, &clock);
  if (graph == nullptr) {
    std::fprintf(stderr, "bad config: %s\n", error.c_str());
    std::exit(1);
  }
  std::vector<double> wakeups;
  graph->FindAs<click::ToNetfront>("dst")->set_handler([&clock, &wakeups](Packet&) {
    // Batched packets released together count as one radio wake-up.
    double now = sim::ToSeconds(clock.now());
    if (wakeups.empty() || now - wakeups.back() > 1.0) {
      wakeups.push_back(now);
    }
  });
  // One 1 KB notification every 30 s, as in §8.
  for (double t = 0; t < window_sec; t += 30) {
    clock.ScheduleAt(sim::FromSeconds(t), [&graph] {
      Packet note = Packet::MakeUdp(Ipv4Address::MustParse("5.5.5.5"),
                                    Ipv4Address::MustParse("172.16.3.10"), 4000, 1500, 1024);
      graph->InjectAtSource(note);
    });
  }
  clock.RunUntil(sim::FromSeconds(window_sec));
  return wakeups;
}

}  // namespace

int main() {
  constexpr double kWindowSec = 3600;
  energy::RadioEnergyModel radio;

  bench::PrintHeader("Figure 13: average device power vs batching interval");
  std::printf("%-20s %-16s %-18s\n", "batch interval (s)", "wake-ups/hour",
              "avg power (mW)");
  bench::PrintRule();
  for (double interval : {30.0, 60.0, 120.0, 240.0}) {
    std::vector<double> wakeups = DeviceWakeups(interval, kWindowSec);
    double power = radio.AveragePowerMw(wakeups, kWindowSec);
    std::printf("%-20.0f %-16zu %-18.1f\n", interval, wakeups.size(), power);
  }
  std::printf("(paper: ~240 mW at 30 s down to ~140 mW at 240 s — batching at the In-Net\n"
              " platform trades notification delay for device battery)\n");

  bench::PrintHeader("Sec 8: HTTP vs HTTPS download energy (8 Mb/s over WiFi)");
  double http = radio.DownloadPowerMw(8e6, /*https=*/false);
  double https = radio.DownloadPowerMw(8e6, /*https=*/true);
  std::printf("HTTP: %.0f mW    HTTPS: %.0f mW    (+%.0f%%)\n", http, https,
              (https / http - 1) * 100);
  std::printf("(paper: 570 mW vs 650 mW, ~15%% more for TLS decryption — the incentive for\n"
              " the payload-invariant request that makes plain HTTP safe to use)\n");
  return 0;
}
