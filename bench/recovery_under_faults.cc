// Robustness experiment: recovery under injected faults. Not a paper figure —
// this harness quantifies the failure model added on top of the §5/§6
// prototype: boot failures, VM crashes, and switch packet loss, with the
// watchdog restarting guests under exponential backoff.
//
// Part 1 sweeps the crash rate over a 50-tenant on-demand platform (boot
// failure p=0.2 throughout, the acceptance scenario) and reports
// time-to-full-recovery after the fault window closes plus the packet-loss
// breakdown (switch drops vs bounded-buffer overflow vs misses).
//
// Part 2 times orchestrator failover: a platform node dies and every stranded
// tenant is re-verified and re-placed on the survivors.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/controller/orchestrator.h"
#include "src/obs/metrics.h"
#include "src/platform/platform.h"
#include "src/platform/watchdog.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace {

using namespace innet;
using platform::InNetPlatform;
using platform::VmKind;

constexpr const char* kFirewallConfig =
    "FromNetfront() -> IPFilter(allow udp, allow tcp) -> ToNetfront();";
constexpr int kTenants = 50;
constexpr double kFaultWindowSec = 10.0;
constexpr double kSettleHorizonSec = 40.0;

struct RecoveryResult {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t fault_dropped = 0;   // switch-level injected loss
  uint64_t buffer_dropped = 0;  // bounded buffers overflowed during outages
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t restart_failures = 0;
  uint64_t gave_up = 0;
  double recovery_sec = -1.0;  // time from fault-window close to all-clear
};

std::string TenantAddr(int tenant) {
  return "172.16." + std::to_string(3 + tenant / 200) + "." +
         std::to_string(10 + tenant % 200);
}

RecoveryResult RunScenario(double crash_mean_uptime_s, double boot_failure_p) {
  RecoveryResult result;
  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.boot_failure_p = boot_failure_p;
  plan.crash_mean_uptime_s = crash_mean_uptime_s;
  sim::FaultInjector injector(plan);

  InNetPlatform platform(&clock, platform::VmCostModel{}, 8ull << 30);
  platform.SetFaultInjector(&injector);
  platform.EnableWatchdog();
  platform.SetEgressHandler([&](Packet&) { ++result.delivered; });
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    platform.RegisterOnDemand(Ipv4Address::MustParse(TenantAddr(tenant)), kFirewallConfig,
                              VmKind::kClickOs, /*per_flow=*/false);
  }

  // A steady drip: one packet per millisecond, round-robin across tenants,
  // for the whole fault window.
  const int packets = static_cast<int>(kFaultWindowSec * 1000);
  for (int tick = 0; tick < packets; ++tick) {
    clock.ScheduleAt(sim::FromMillis(tick), [&platform, &result, tick] {
      Packet p = Packet::MakeUdp(Ipv4Address::MustParse("9.9.9.9"),
                                 Ipv4Address::MustParse(TenantAddr(tick % kTenants)),
                                 static_cast<uint16_t>(7000 + tick % 64), 80, 64);
      ++result.sent;
      platform.HandlePacket(p);
    });
  }

  // Close the fault window: new boots and deliveries run fault-free, but
  // crash timers armed before the close still fire — recovery must absorb
  // them too.
  const sim::TimeNs fault_end = sim::FromSeconds(kFaultWindowSec);
  clock.ScheduleAt(fault_end, [&platform] { platform.SetFaultInjector(nullptr); });

  // Probe for all-clear every 10 ms after the window closes.
  std::vector<std::pair<sim::TimeNs, size_t>> probes;
  for (double t = kFaultWindowSec; t < kSettleHorizonSec; t += 0.01) {
    clock.ScheduleAt(sim::FromSeconds(t),
                     [&platform, &probes, &clock] {
                       probes.emplace_back(clock.now(), platform.vms().crashed_count());
                     });
  }
  clock.RunUntil(sim::FromSeconds(kSettleHorizonSec));

  auto stats = platform.watchdog()->stats();
  result.fault_dropped = platform.software_switch().fault_dropped_count();
  result.buffer_dropped = platform.buffer_drops();
  result.crashes = stats.crashes_observed;
  result.restarts = stats.restarts;
  result.restart_failures = stats.restart_failures;
  result.gave_up = stats.gave_up;
  // Recovery time: the last probe that still saw a crashed guest bounds the
  // all-clear from below.
  sim::TimeNs last_down = fault_end;
  bool ever_down = false;
  for (const auto& [when, crashed] : probes) {
    if (crashed > 0) {
      last_down = when;
      ever_down = true;
    }
  }
  if (!ever_down) {
    result.recovery_sec = 0.0;
  } else if (last_down + sim::FromMillis(10) < sim::FromSeconds(kSettleHorizonSec)) {
    result.recovery_sec = sim::ToMillis(last_down - fault_end) / 1e3 + 0.01;
  }  // else never settled: stays -1
  return result;
}

obs::json::Value ScenarioJson(const char* rate, const RecoveryResult& r) {
  obs::json::Value row = obs::json::Value::Object();
  row.Set("crash_rate", rate);
  row.Set("sent", r.sent);
  row.Set("delivered", r.delivered);
  row.Set("crashes", r.crashes);
  row.Set("restarts", r.restarts);
  row.Set("restart_failures", r.restart_failures);
  row.Set("gave_up", r.gave_up);
  row.Set("switch_fault_drops", r.fault_dropped);
  row.Set("buffer_drops", r.buffer_dropped);
  row.Set("recovery_sec", r.recovery_sec);
  return row;
}

obs::json::Value RunFailoverTiming() {
  obs::json::Value failover = obs::json::Value::Object();
  sim::EventQueue clock;
  controller::Orchestrator orchestrator(topology::Network::MakeFigure3(), &clock);
  const int tenants = 20;
  std::string victim;
  for (int i = 0; i < tenants; ++i) {
    controller::ClientRequest request;
    request.client_id = "tenant" + std::to_string(i);
    request.requester = controller::RequesterClass::kClient;
    std::string addr = "10.10.0." + std::to_string(5 + i);
    request.click_config = "FromNetfront() -> IPFilter(allow udp dst port " +
                           std::to_string(1500 + i) + ") -> IPRewriter(pattern - - " + addr +
                           " - 0 0) -> ToNetfront();";
    request.whitelist = {Ipv4Address::MustParse(addr)};
    request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
    auto deploy = orchestrator.Deploy(request);
    if (!deploy.outcome.accepted) {
      std::printf("deploy %d rejected: %s\n", i, deploy.outcome.reason.c_str());
      failover.Set("error", "deploy rejected: " + deploy.outcome.reason);
      return failover;
    }
    victim = deploy.outcome.platform;
  }
  clock.RunUntil(sim::FromSeconds(5));  // let the shared VM finish booting

  bench::WallTimer timer;
  auto report = orchestrator.MarkPlatformFailed(victim);
  double total_ms = timer.ElapsedMs();
  std::printf("failed platform:        %s\n", report.failed_platform.c_str());
  std::printf("tenants stranded:       %zu\n", report.tenants_affected);
  std::printf("recovered / lost:       %zu / %zu\n", report.recovered, report.lost);
  std::printf("re-verification time:   %.2f ms (%.2f ms per tenant)\n", report.reverify_ms,
              report.tenants_affected > 0
                  ? report.reverify_ms / static_cast<double>(report.tenants_affected)
                  : 0.0);
  std::printf("total failover time:    %.2f ms wall clock\n", total_ms);
  failover.Set("failed_platform", report.failed_platform);
  failover.Set("tenants_affected", static_cast<uint64_t>(report.tenants_affected));
  failover.Set("recovered", static_cast<uint64_t>(report.recovered));
  failover.Set("lost", static_cast<uint64_t>(report.lost));
  failover.Set("reverify_ms", report.reverify_ms);
  failover.Set("total_ms", total_ms);
  return failover;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Recovery under faults: 50 on-demand tenants, boot failure p=0.2, 10 s fault window");
  std::printf("%-14s %-9s %-9s %-9s %-10s %-10s %-10s %-10s\n", "crash rate", "crashes",
              "restarts", "gave_up", "sw drops", "buf drops", "loss %", "recov (s)");
  bench::PrintRule();
  obs::json::Value scenarios = obs::json::Value::Array();
  for (double mean_uptime : {0.0, 4.0, 2.0, 1.0, 0.5}) {
    RecoveryResult r = RunScenario(mean_uptime, mean_uptime == 0.0 ? 0.0 : 0.2);
    double loss_pct =
        r.sent > 0 ? 100.0 * static_cast<double>(r.sent - r.delivered) / r.sent : 0.0;
    char rate[32];
    if (mean_uptime == 0.0) {
      std::snprintf(rate, sizeof(rate), "none");
    } else {
      std::snprintf(rate, sizeof(rate), "1/%.1fs", mean_uptime);
    }
    scenarios.Push(ScenarioJson(rate, r));
    char recov[32];
    if (r.recovery_sec < 0) {
      std::snprintf(recov, sizeof(recov), ">30");
    } else {
      std::snprintf(recov, sizeof(recov), "%.2f", r.recovery_sec);
    }
    std::printf("%-14s %-9llu %-9llu %-9llu %-10llu %-10llu %-10.2f %-10s\n", rate,
                static_cast<unsigned long long>(r.crashes),
                static_cast<unsigned long long>(r.restarts),
                static_cast<unsigned long long>(r.gave_up),
                static_cast<unsigned long long>(r.fault_dropped),
                static_cast<unsigned long long>(r.buffer_dropped), loss_pct, recov);
  }
  std::printf("(fault-free row doubles as the regression baseline: zero crashes, zero loss)\n");

  bench::PrintHeader("Orchestrator failover: node death, re-verify + re-place on survivors");
  obs::json::Value failover = RunFailoverTiming();

  obs::json::Value results = obs::json::Value::Object();
  results.Set("scenarios", std::move(scenarios));
  results.Set("failover", std::move(failover));
  results.Set("metrics", obs::Registry().ToJson());
  bench::WriteBenchJson("recovery_under_faults", std::move(results));
  return 0;
}
