// Reproduces Figure 5: "ClickOS reaction time for the first 15 packets of
// 100 concurrent flows" — plus the §6 memory-capacity prelude (10,000
// ClickOS guests vs ~200 Linux VMs on a 128 GB box) and the Linux-VM
// comparison (~700 ms first-packet RTT, "unacceptable for interactive
// traffic").
//
// Setup mirrors the paper's: three hosts in a row (pinger, In-Net platform,
// responder); each ping flow's first packet triggers an on-the-fly ClickOS
// boot running a stateless firewall; later probes ride the installed flow
// rule.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/metrics.h"
#include "src/platform/platform.h"
#include "src/sim/stats.h"

namespace {

using namespace innet;
using platform::InNetPlatform;
using platform::VmKind;

constexpr const char* kFirewallConfig =
    "FromNetfront() -> IPFilter(allow icmp, allow udp, allow tcp) -> ToNetfront();";

struct PingExperiment {
  static constexpr int kFlows = 100;
  static constexpr int kProbes = 15;
  // Per-probe RTT samples indexed by probe id, and first-probe RTT per flow.
  std::vector<sim::Samples> per_probe{kProbes};
  std::vector<double> first_rtt_ms{std::vector<double>(kFlows, 0.0)};
};

// Runs the three-host ping experiment with the given guest kind.
PingExperiment RunPings(VmKind kind) {
  PingExperiment result;
  sim::EventQueue clock;
  InNetPlatform platform(&clock, platform::VmCostModel{}, 128ull << 30);
  const Ipv4Address service = Ipv4Address::MustParse("172.16.3.10");
  platform.RegisterOnDemand(service, kFirewallConfig, kind, /*per_flow=*/true);

  const sim::TimeNs link_latency = sim::FromMillis(0.1);  // per hop, per direction

  struct Probe {
    int flow;
    int seq;
    sim::TimeNs sent;
  };
  // The responder echoes; total RTT = 4 link hops + platform processing
  // (which, for the first packet, includes the VM boot).
  std::vector<Probe> inflight;
  platform.SetEgressHandler([&](Packet& packet) {
    int flow = static_cast<int>(packet.src_port());  // ICMP id rides here
    int seq = static_cast<int>(packet.dst_port());
    for (size_t i = 0; i < inflight.size(); ++i) {
      if (inflight[i].flow == flow && inflight[i].seq == seq) {
        sim::TimeNs sent = inflight[i].sent;
        inflight.erase(inflight.begin() + static_cast<ptrdiff_t>(i));
        // Remaining path: platform->responder->platform->pinger ~ 3 hops,
        // return direction skips middlebox processing (already-open flow).
        clock.ScheduleAfter(3 * link_latency, [&result, flow, seq, sent, &clock] {
          double rtt_ms = sim::ToMillis(clock.now() - sent);
          result.per_probe[static_cast<size_t>(seq)].Add(rtt_ms);
          if (seq == 0) {
            result.first_rtt_ms[static_cast<size_t>(flow)] = rtt_ms;
          }
        });
        return;
      }
    }
  });

  for (int flow = 0; flow < PingExperiment::kFlows; ++flow) {
    for (int seq = 0; seq < PingExperiment::kProbes; ++seq) {
      // Flows start (nearly) simultaneously; probes are 1 s apart.
      sim::TimeNs when = sim::FromMillis(0.01 * flow) + sim::FromSeconds(seq);
      clock.ScheduleAt(when, [&, flow, seq] {
        Packet probe = Packet::MakeIcmpEcho(Ipv4Address::MustParse("10.10.0.5"),
                                            Ipv4Address::MustParse("172.16.3.10"),
                                            static_cast<uint16_t>(flow),
                                            static_cast<uint16_t>(seq));
        inflight.push_back({flow, seq, clock.now()});
        clock.ScheduleAfter(link_latency, [&platform, probe]() mutable {
          Packet p = probe;
          platform.HandlePacket(p);
        });
      });
    }
  }
  clock.RunUntil(sim::FromSeconds(30));
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Sec 6 prelude: guests per 128 GB server (memory bound)");
  {
    platform::VmCostModel model;
    uint64_t box = 128ull << 30;
    std::printf("ClickOS (%llu MB/guest): %llu guests    Linux (%llu MB/guest): %llu guests\n",
                static_cast<unsigned long long>(model.MemoryBytes(VmKind::kClickOs) >> 20),
                static_cast<unsigned long long>(box / model.MemoryBytes(VmKind::kClickOs)),
                static_cast<unsigned long long>(model.MemoryBytes(VmKind::kLinux) >> 20),
                static_cast<unsigned long long>(box / model.MemoryBytes(VmKind::kLinux)));
    std::printf("(paper: 10,000 ClickOS instances vs ~200 stripped-down Linux VMs)\n");
  }

  bench::PrintHeader("Figure 5: ping RTT by probe id (100 concurrent flows, ClickOS)");
  PingExperiment clickos = RunPings(VmKind::kClickOs);
  std::printf("%-8s %-12s %-12s %-12s\n", "probe", "mean (ms)", "p5 (ms)", "p95 (ms)");
  bench::PrintRule();
  for (int seq = 0; seq < PingExperiment::kProbes; ++seq) {
    const sim::Samples& s = clickos.per_probe[static_cast<size_t>(seq)];
    std::printf("%-8d %-12.2f %-12.2f %-12.2f\n", seq + 1, s.Mean(), s.Percentile(5),
                s.Percentile(95));
  }

  std::printf("\nFirst-packet RTT vs flow id (boot cost grows with existing VMs):\n");
  for (int flow : {0, 24, 49, 74, 99}) {
    std::printf("  flow %3d: %.1f ms\n", flow + 1,
                clickos.first_rtt_ms[static_cast<size_t>(flow)]);
  }
  {
    sim::Samples firsts;
    for (double v : clickos.first_rtt_ms) {
      firsts.Add(v);
    }
    std::printf("  mean first-packet RTT: %.1f ms (paper: ~50 ms, ~100 ms at flow 100)\n",
                firsts.Mean());
  }

  bench::PrintHeader("Linux-VM comparison (same experiment, x86 Linux guests)");
  PingExperiment linux_vms = RunPings(VmKind::kLinux);
  sim::Samples linux_firsts;
  for (double v : linux_vms.first_rtt_ms) {
    linux_firsts.Add(v);
  }
  std::printf("mean first-packet RTT: %.0f ms (paper: ~700 ms — an order of magnitude "
              "worse,\nunacceptable for interactive traffic)\n",
              linux_firsts.Mean());
  std::printf("later probes (both guest kinds): %.2f ms mean\n",
              clickos.per_probe[5].Mean());

  // Telemetry snapshot: per-probe RTT summaries, first-packet RTTs, and the
  // registry's boot-latency histograms (both guest kinds ran above).
  obs::json::Value results = obs::json::Value::Object();
  obs::json::Value per_probe = obs::json::Value::Array();
  for (int seq = 0; seq < PingExperiment::kProbes; ++seq) {
    obs::json::Value row = obs::json::Value::Object();
    row.Set("probe", seq + 1);
    row.Set("rtt_ms", clickos.per_probe[static_cast<size_t>(seq)].SummaryJson());
    per_probe.Push(std::move(row));
  }
  results.Set("clickos_per_probe", std::move(per_probe));
  {
    sim::Samples firsts;
    obs::json::Value first_rtts = obs::json::Value::Array();
    for (double v : clickos.first_rtt_ms) {
      firsts.Add(v);
      first_rtts.Push(v);
    }
    results.Set("clickos_first_rtt_ms", std::move(first_rtts));
    results.Set("clickos_first_rtt_summary", firsts.SummaryJson());
    results.Set("linux_first_rtt_summary", linux_firsts.SummaryJson());
  }
  results.Set("metrics", obs::Registry().ToJson());
  bench::WriteBenchJson("fig05_boot_rtt", std::move(results));
  return 0;
}
