// Federation failover bench: deploy acceptance and placement-belief
// convergence while regional WAN links partition and heal, over a 3-region
// federated control plane (one RegionController + fleet per PoP region, one
// FederationCoordinator gossiping digests over a lossy region-scoped
// channel).
//
// Phase 1 seeds tenants into their affinity regions. Phase 2 rolls a
// partition across each region in turn: deploys with affinity for the dark
// region must still be accepted (failing over to survivors), the partitioned
// region keeps serving and mutates local state autonomously (a tenant is
// killed behind the coordinator's back), and the heal-time reconcile must
// drop exactly the beliefs the region no longer backs. Phase 3 runs one
// cross-region migration through the coordinator.
//
// The acceptance invariants: every deploy lands somewhere, the migration
// completes as ONE connected span tree (the coordinator's root id propagates
// through every WAN hop and region-local handler span — no orphans), and
// after the final heal the coordinator holds zero stale placement beliefs.
// Fixed seed, simulated clock: the JSON snapshot, the Perfetto trace, and
// the fleet observability dump (--fleet-obs-out, default
// BENCH_federation_failover_fleet.json) are byte-identical across runs
// (scripts/ci.sh runs it twice and diffs all of them).
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/federation/coordinator.h"
#include "src/federation/region.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace {

using namespace innet;
using controller::ClientRequest;
using federation::FederatedDeploy;
using federation::FederatedMigration;
using federation::FederatedRequest;
using federation::FederationCoordinator;
using federation::RegionController;

constexpr uint64_t kSeed = 42;
constexpr int kPopsPerRegion = 2;
const char* kRegions[] = {"east", "central", "west"};

ClientRequest StatefulRequest(const std::string& client_id) {
  ClientRequest request;
  request.client_id = client_id;
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - 10.1.0.5 - 0 0) "
      "-> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.1.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.1.0.0/16")};
  return request;
}

struct DeployStats {
  int requested = 0;
  int accepted = 0;
  int rejected = 0;    // no region accepted: an SLO violation
  int diverted = 0;    // accepted outside the affinity region
  int failed_over = 0; // accepted only after at least one region gave up
};

obs::json::Value StatsJson(const DeployStats& stats) {
  obs::json::Value out = obs::json::Value::Object();
  out.Set("requested", static_cast<int64_t>(stats.requested));
  out.Set("accepted", static_cast<int64_t>(stats.accepted));
  out.Set("rejected", static_cast<int64_t>(stats.rejected));
  out.Set("diverted", static_cast<int64_t>(stats.diverted));
  out.Set("failed_over", static_cast<int64_t>(stats.failed_over));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fleet_out = "BENCH_federation_failover_fleet.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet-obs-out") == 0) {
      fleet_out = argv[i + 1];
    }
  }
  obs::Registry().ResetValues();

  sim::EventQueue clock;
  sim::FaultPlan plan;
  plan.seed = kSeed;
  plan.region_loss_p = 0.05;
  plan.region_delay_mean_ms = 1.0;
  sim::FaultInjector faults(plan);

  // Tracing on for the whole run: the phase-3 acceptance check walks the
  // migration's span tree, and the Perfetto export rides along as an
  // artifact (sim-clock timestamps only, so it diffs clean across runs).
  obs::Tracer().Clear();
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });

  std::vector<std::unique_ptr<RegionController>> regions;
  for (const char* name : kRegions) {
    regions.push_back(std::make_unique<RegionController>(
        name, topology::Network::MakeMultiPop(kPopsPerRegion), &clock));
    regions.back()->EnableDegradedMonitor(2 * sim::kSecond);
  }
  FederationCoordinator coordinator(&clock);
  for (auto& region : regions) {
    coordinator.AddRegion(region.get());
  }
  coordinator.SetFaultInjector(&faults);
  coordinator.StartDigestPolling();
  clock.RunUntil(clock.now() + sim::FromSeconds(1));  // first digests land

  auto deploy = [&](const std::string& client_id, const std::string& affinity,
                    DeployStats* stats, std::vector<std::string>* modules) {
    FederatedRequest federated;
    federated.request = StatefulRequest(client_id);
    federated.client_region = affinity;
    ++stats->requested;
    auto result = std::make_shared<std::optional<FederatedDeploy>>();
    coordinator.Deploy(federated, [result](const FederatedDeploy& r) { *result = r; });
    // Drive the clock until the deploy resolves (retries + failover chains
    // run on simulated time; 60 s bounds the longest give-up cascade).
    sim::TimeNs deadline = clock.now() + sim::FromSeconds(60);
    while (!result->has_value() && clock.now() < deadline) {
      clock.RunUntil(clock.now() + sim::FromSeconds(1));
    }
    if (!result->has_value() || !(*result)->ok) {
      ++stats->rejected;
      return;
    }
    ++stats->accepted;
    if ((*result)->region != affinity) {
      ++stats->diverted;
    }
    if ((*result)->failed_over) {
      ++stats->failed_over;
    }
    if (modules != nullptr) {
      modules->push_back((*result)->module_id);
    }
  };

  // --- Phase 1: steady state — tenants land in their affinity regions ------
  bench::PrintHeader("Federation failover: phase 1 — affinity placement (seed 42)");
  DeployStats steady;
  std::vector<std::string> doomed_modules;    // per region: killed during its partition
  std::vector<std::string> survivor_modules;  // per region: survives to phase 3
  for (int i = 0; i < 2; ++i) {
    for (const char* region : kRegions) {
      deploy("tenant-" + std::string(region) + "-" + std::to_string(i), region, &steady,
             i == 0 ? &doomed_modules : &survivor_modules);
    }
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(2));  // guests boot, digests refresh
  std::printf("phase 1: requested=%d accepted=%d diverted=%d\n", steady.requested,
              steady.accepted, steady.diverted);

  // --- Phase 2: rolling regional partitions --------------------------------
  bench::PrintHeader("Phase 2 — rolling partitions: failover + autonomous mutation + heal");
  DeployStats dark;
  obs::Counter* stale_counter =
      obs::Registry().GetCounter("innet_federation_reconcile_total", {{"outcome", "stale_dropped"}});
  size_t reconcile_residual = 0;  // drops found by a second, explicit reconcile
  int degraded_observed = 0;
  for (size_t r = 0; r < regions.size(); ++r) {
    const std::string region_name = kRegions[r];
    uint64_t stale_before = stale_counter->value();
    coordinator.SetRegionPartitioned(region_name, true);
    // Deploys with affinity for the dark region: the fresh-digest ranking
    // still tries it first, gives up, and fails over to a survivor.
    for (int i = 0; i < 2; ++i) {
      deploy("dark-" + region_name + "-" + std::to_string(i), region_name, &dark, nullptr);
    }
    // The partitioned region operates autonomously: it kills one of its
    // phase-1 tenants on purely local authority and goes degraded once the
    // coordinator stays silent past the threshold.
    regions[r]->orchestrator().Kill(doomed_modules[r]);
    clock.RunUntil(clock.now() + sim::FromSeconds(4));
    if (regions[r]->degraded()) {
      ++degraded_observed;
    }
    // Heal: the coordinator immediately reconciles beliefs against the
    // region's digest — the killed tenant's belief must drop. A second,
    // explicit reconcile must then be a no-op (idempotence).
    coordinator.SetRegionPartitioned(region_name, false);
    uint64_t healed_drops = stale_counter->value() - stale_before;
    FederationCoordinator::ReconcileOutcome again = coordinator.ReconcileRegion(region_name);
    reconcile_residual += again.stale_dropped + again.discovered;
    clock.RunUntil(clock.now() + sim::FromSeconds(2));
    std::printf("partition %-8s accepted=%d failed_over=%d stale_dropped=%llu degraded=%s\n",
                region_name.c_str(), dark.accepted, dark.failed_over,
                static_cast<unsigned long long>(healed_drops),
                regions[r]->degraded() ? "still" : "cleared");
  }
  size_t reconcile_stale_dropped = stale_counter->value();

  // --- Phase 3: cross-region migration through the coordinator -------------
  bench::PrintHeader("Phase 3 — cross-region migration via the coordinator");
  int migrations_completed = 0;
  std::optional<FederatedMigration> migration;
  // Move central's surviving phase-1 tenant (index 1 in registration order)
  // into west through the coordinator's export/import path.
  coordinator.Migrate(survivor_modules[1], "west",
                      [&](const FederatedMigration& r) { migration = r; });
  clock.RunUntil(clock.now() + sim::FromSeconds(20));
  if (migration.has_value() && migration->ok) {
    ++migrations_completed;
  }
  std::printf("migration: %s\n",
              migrations_completed == 1 ? "completed" : migration.has_value()
                                                            ? migration->error.c_str()
                                                            : "still in flight");

  // --- Convergence ---------------------------------------------------------
  clock.RunUntil(clock.now() + sim::FromSeconds(5));  // final digest rounds
  size_t stale_beliefs = coordinator.StaleBeliefCount();
  int regions_degraded = 0;
  size_t federation_tenants = 0;
  for (auto& region : regions) {
    regions_degraded += region->degraded() ? 1 : 0;
    federation_tenants += region->orchestrator().placement_count();
  }
  // --- Trace connectivity --------------------------------------------------
  // The migration must render as ONE connected tree: every event reachable
  // from the coordinator's root span via parent links, with no orphan parent
  // references anywhere in the dump (a parent id that no recorded event
  // owns would be a broken cross-region hand-off).
  const std::vector<obs::TraceEvent>& events = obs::Tracer().events();
  std::set<uint64_t> spans;
  for (const obs::TraceEvent& event : events) {
    spans.insert(event.span);
  }
  size_t orphan_spans = 0;
  for (const obs::TraceEvent& event : events) {
    if (event.parent != 0 && spans.count(event.parent) == 0) {
      ++orphan_spans;
    }
  }
  size_t migration_tree_spans = 0;
  if (migration.has_value() && migration->trace_id != 0) {
    std::set<uint64_t> tree{migration->trace_id};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const obs::TraceEvent& event : events) {
        if (event.parent != 0 && tree.count(event.parent) != 0 && tree.count(event.span) == 0) {
          tree.insert(event.span);
          grew = true;
        }
      }
    }
    migration_tree_spans = tree.size();
  }
  // Root + export hop + import hop + completion is the bare minimum; the
  // region-local suspend/adopt spans push it well past that.
  bool migration_trace_connected = migration_tree_spans >= 4 && orphan_spans == 0;
  std::printf("trace: migration_tree_spans=%zu orphan_spans=%zu -> %s\n", migration_tree_spans,
              orphan_spans, migration_trace_connected ? "connected" : "DISCONNECTED");

  bool converged = steady.rejected == 0 && dark.rejected == 0 && migrations_completed == 1 &&
                   stale_beliefs == 0 && regions_degraded == 0 && reconcile_residual == 0 &&
                   migration_trace_connected;
  std::printf("\nfinal: tenants=%zu stale_beliefs=%zu degraded_regions=%d -> %s\n",
              federation_tenants, stale_beliefs, regions_degraded,
              converged ? "CONVERGED" : "CONVERGENCE FAILURE");

  // Headline series for the regression gate: all seeded deterministic
  // outcomes, zero tolerance.
  bench::BenchSeries series;
  series.Higher("converged", converged ? 1.0 : 0.0, 0.0, "bool");
  series.Higher("steady_accepted", steady.accepted, 0.0, "tenants");
  series.Higher("dark_accepted", dark.accepted, 0.0, "tenants");
  series.Higher("dark_failed_over", dark.failed_over, 0.0, "tenants");
  series.Lower("rejected", steady.rejected + dark.rejected, 0.0, "tenants");
  series.Lower("stale_beliefs_after_heal", static_cast<double>(stale_beliefs), 0.0, "beliefs");
  series.Higher("reconcile_stale_dropped", static_cast<double>(reconcile_stale_dropped), 0.0,
                "beliefs");
  series.Higher("migrations_completed", migrations_completed, 0.0, "count");
  series.Higher("degraded_windows_observed", degraded_observed, 0.0, "regions");
  series.Higher("migration_trace_connected", migration_trace_connected ? 1.0 : 0.0, 0.0, "bool");
  series.Lower("trace_orphan_spans", static_cast<double>(orphan_spans), 0.0, "spans");
  series.Higher("fleet_regions_tracked",
                static_cast<double>(coordinator.fleet_view().region_count()), 0.0, "regions");
  series.Lower("fleet_incidents_total",
               static_cast<double>(coordinator.fleet_view().incidents().size()), 0.0, "incidents");

  obs::json::Value results = obs::json::Value::Object();
  results.Set("seed", kSeed);
  results.Set("converged", converged);
  results.Set("series", series.ToJson());
  results.Set("steady", StatsJson(steady));
  results.Set("dark", StatsJson(dark));
  obs::json::Value reconcile = obs::json::Value::Object();
  reconcile.Set("stale_dropped", static_cast<uint64_t>(reconcile_stale_dropped));
  reconcile.Set("residual", static_cast<uint64_t>(reconcile_residual));
  results.Set("reconcile", std::move(reconcile));
  results.Set("migrations_completed", static_cast<int64_t>(migrations_completed));
  results.Set("stale_beliefs", static_cast<uint64_t>(stale_beliefs));
  results.Set("federation_tenants", static_cast<uint64_t>(federation_tenants));
  results.Set("sim_end_ns", clock.now());
  obs::json::Value trace_summary = obs::json::Value::Object();
  trace_summary.Set("events", static_cast<uint64_t>(events.size()));
  trace_summary.Set("orphan_spans", static_cast<uint64_t>(orphan_spans));
  trace_summary.Set("migration_tree_spans", static_cast<uint64_t>(migration_tree_spans));
  trace_summary.Set("migration_trace_id",
                    migration.has_value() ? migration->trace_id : uint64_t{0});
  results.Set("trace", std::move(trace_summary));
  obs::Tracer().ExportMetrics(&obs::Registry());
  results.Set("metrics", obs::Registry().ToJson());

  // Companion artifacts: the merged Perfetto trace (load the migration's
  // tree in ui.perfetto.dev — see README) and the coordinator's fleet
  // observability dump. Both deterministic; ci.sh diffs them across runs.
  bool artifacts_ok =
      obs::Tracer().WritePerfettoFile("BENCH_federation_failover_trace.json") &&
      coordinator.fleet_view().WriteJsonFile(fleet_out, clock.now());
  obs::Tracer().SetTimeSource(nullptr);  // clock dies before the global tracer
  obs::Tracer().Enable(false);
  if (!bench::WriteBenchJson("federation_failover", std::move(results)) || !artifacts_ok) {
    return 1;
  }
  return converged ? 0 : 1;
}
