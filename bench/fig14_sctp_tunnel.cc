// Reproduces Figure 14: "SCTP performance when tunneling over TCP and UDP"
// on an emulated 100 Mb/s, 20 ms-RTT WAN path with 0-5% random loss.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/transport/tunnel_experiment.h"

int main() {
  using namespace innet;
  using transport::RunSctpTunnelExperiment;
  using transport::TunnelMode;
  using transport::TunnelParams;

  bench::PrintHeader("Figure 14: SCTP goodput over UDP vs TCP tunnels (100 Mb/s, 20 ms RTT)");
  std::printf("%-10s %-14s %-14s %-8s %-24s\n", "loss (%)", "UDP (Mb/s)", "TCP (Mb/s)",
              "ratio", "tunnel retx (TCP mode)");
  bench::PrintRule();

  for (double loss : {0.0, 0.01, 0.02, 0.03, 0.04, 0.05}) {
    TunnelParams params;
    params.loss_rate = loss;
    params.duration_sec = 20;
    params.seed_repeats = 8;
    transport::TunnelResult udp = RunSctpTunnelExperiment(TunnelMode::kUdp, params);
    transport::TunnelResult tcp = RunSctpTunnelExperiment(TunnelMode::kTcp, params);
    std::printf("%-10.0f %-14.2f %-14.2f %-8.2f %-24llu\n", loss * 100, udp.goodput_mbps,
                tcp.goodput_mbps,
                tcp.goodput_mbps > 0 ? udp.goodput_mbps / tcp.goodput_mbps : 0.0,
                static_cast<unsigned long long>(tcp.tunnel_retransmits));
  }
  std::printf("\n(paper: at 1-5%% loss, SCTP over a TCP tunnel achieves 2-5x less throughput\n"
              " than over UDP — nested congestion control plus head-of-line blocking. The\n"
              " In-Net fix: a ~200 ms reachability query tells the client whether UDP works\n"
              " before committing, instead of waiting out SCTP's 3 s initial timeout.)\n");
  return 0;
}
