// Reproduces Figure 11: "Cost of sandboxing in an In-Net platform."
// RX throughput (Mpps) by packet size for three configurations:
//   1. no sandbox — the module receives traffic directly;
//   2. in-config ChangeEnforcer (paper: -1/3 at 64 B, -1/5 at 128 B, no
//      measurable drop at larger sizes where the NIC line rate binds);
//   3. the enforcer in a separate VM — every packet crosses the VM boundary
//      twice; we emulate the boundary with a real worker-thread handoff, so
//      the context-switch cost is genuine (paper: throughput drops ~70%).
#include <algorithm>
#include <cstdio>

#include "bench/throughput_util.h"
#include "src/platform/sandbox.h"

namespace {

using namespace innet;

// Traffic from many distinct outside peers, as a real RX path sees — the
// enforcer tracks per-peer authorization state, so peer diversity is what
// gives it a realistic footprint.
std::vector<Packet> PeerTemplates(double frame_bytes) {
  std::vector<Packet> templates;
  templates.reserve(4096);
  for (uint32_t peer = 0; peer < 4096; ++peer) {
    templates.push_back(Packet::MakeUdp(
        Ipv4Address(Ipv4Address::MustParse("8.8.0.0").value() + peer * 97),
        Ipv4Address::MustParse("172.16.3.10"), static_cast<uint16_t>(5000 + (peer & 0xFF)),
        80, static_cast<size_t>(frame_bytes) - 42));
  }
  return templates;
}

double MeasureConfigMpps(const std::string& config_text, double frame_bytes) {
  std::string error;
  auto graph = click::Graph::FromText(config_text, &error);
  if (graph == nullptr) {
    std::fprintf(stderr, "bad config: %s\n", error.c_str());
    std::exit(1);
  }
  std::vector<Packet> templates = PeerTemplates(frame_bytes);
  double best = 0;
  for (int run = 0; run < 3; ++run) {
    best = std::max(best, bench::MeasurePps(graph.get(), templates, 0.1));
  }
  return best / 1e6;
}

// The separate-VM sandbox: packets cross the VM boundary in vhost-style
// rings; we emulate each crossing with a real thread handoff per 32-packet
// batch, so the synchronization cost is genuine.
double MeasureSeparateVmMpps(double frame_bytes) {
  platform::SeparateVmSandbox sandbox({Ipv4Address::MustParse("172.16.3.10")});
  constexpr size_t kBatch = 32;
  std::vector<Packet> batch(
      kBatch, Packet::MakeUdp(Ipv4Address::MustParse("8.8.8.8"),
                              Ipv4Address::MustParse("172.16.3.10"), 5000, 80,
                              static_cast<size_t>(frame_bytes) - 42));
  bool admitted[kBatch];
  bench::WallTimer timer;
  uint64_t sent = 0;
  while (timer.ElapsedSec() < 0.15) {
    sandbox.FilterBatch(0, batch.data(), kBatch, admitted);
    sent += kBatch;
  }
  return static_cast<double>(sent) / timer.ElapsedSec() / 1e6;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 11: RX throughput with and without sandboxing (CPU-bound Mpps)");
  std::printf("%-10s %-12s %-14s %-14s %-12s %-14s %-12s\n", "frame(B)", "base", "in-config",
              "separate-VM", "in-cfg/base", "sep-VM/base", "line Mpps");
  bench::PrintRule();

  const char* kBase =
      "FromNetfront() -> CheckIPHeader() -> Counter() -> ToNetfront();";
  // The enforcer inline on the receive path (inbound side records peers).
  const char* kInline =
      "src :: FromNetfront(); enf :: ChangeEnforcer(ALLOW 172.16.3.10);"
      "sink :: ToNetfront();"
      "src -> CheckIPHeader() -> enf; enf[0] -> Counter() -> sink;";

  for (double frame : {64.0, 128.0, 256.0, 512.0, 1024.0, 1472.0}) {
    double base = MeasureConfigMpps(kBase, frame);
    double inline_enf = MeasureConfigMpps(kInline, frame);
    double separate = MeasureSeparateVmMpps(frame);
    std::printf("%-10.0f %-12.3f %-14.3f %-14.3f %-12.2f %-14.2f %-12.2f\n", frame, base,
                inline_enf, separate, inline_enf / base, separate / base,
                bench::LineRatePps(frame) / 1e6);
  }
  std::printf("\n(paper, on a 2013 Xeon E3: the in-config enforcer costs ~1/3 of throughput\n"
              " at 64 B and ~1/5 at 128 B; above that the NIC line rate binds and the\n"
              " difference vanishes (compare the CPU-bound columns with the line-rate\n"
              " column). The separate-VM enforcer drops throughput much further (~70%%)\n"
              " because every packet crosses the VM boundary; here the boundary is a real\n"
              " worker-thread ring handoff.)\n");
  return 0;
}
