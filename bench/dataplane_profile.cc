// Data-plane telemetry harness: per-element profiling, sampled packet-walk
// tracing, and the crash flight recorder, exercised together on one platform.
//
// Scenario: one dedicated tenant plus a two-tenant consolidated guest, all
// profiled (--dataplane-sample-n 8 equivalent, seed 7), under a steady packet
// drip with a deterministic fault injector crashing guests mid-run. The
// watchdog restarts them; every crash snapshots a post-mortem bundle.
//
// Emits BENCH_dataplane_profile.json (folded stacks, walk counts, per-element
// metrics) and BENCH_dataplane_profile_postmortem.json — the flight-recorder
// dump that `innet_top --postmortem` renders; ctest smokes that pipeline.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/sim/fault_injector.h"

namespace {

using namespace innet;
using platform::InNetPlatform;

constexpr uint32_t kSampleN = 8;
constexpr uint64_t kSeed = 7;
constexpr double kTrafficStartSec = 1.0;
constexpr double kHorizonSec = 12.0;

constexpr const char* kDedicatedConfig =
    "FromNetfront() -> IPFilter(allow udp, allow tcp) -> "
    "IPRewriter(pattern - - 10.0.9.1 - 0 0) -> ToNetfront();";
constexpr const char* kTenantAConfig =
    "FromNetfront() -> IPFilter(allow udp) -> ToNetfront();";
constexpr const char* kTenantBConfig =
    "FromNetfront() -> RateLimiter(1000) -> ToNetfront();";

}  // namespace

int main() {
  sim::EventQueue clock;
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });
  obs::Health().Enable();

  // Crashes roughly every 3 s of guest uptime, deterministically seeded: the
  // run always produces the same crash episodes, the same post-mortem
  // bundles, and the same sampled walks.
  sim::FaultPlan plan;
  plan.seed = kSeed;
  plan.crash_mean_uptime_s = 3.0;
  sim::FaultInjector injector(plan);

  InNetPlatform box(&clock);
  box.SetFaultInjector(&injector);
  box.EnableWatchdog();
  box.flight_recorder().set_depth(128);
  box.EnableDataplaneProfiling(kSampleN, kSeed);
  uint64_t delivered = 0;
  box.SetEgressHandler([&delivered](Packet&) { ++delivered; });

  bench::PrintHeader("Data-plane profiling: 1 dedicated + 2 consolidated tenants, sample 1/8");

  std::string error;
  Ipv4Address dedicated_addr = Ipv4Address::MustParse("172.16.3.10");
  platform::Vm::VmId dedicated = box.Install(dedicated_addr, kDedicatedConfig, &error);
  if (dedicated == 0) {
    std::fprintf(stderr, "dedicated install failed: %s\n", error.c_str());
    return 1;
  }
  box.SetVmOwner(dedicated, dedicated_addr.ToString());

  std::vector<platform::TenantConfig> tenants(2);
  tenants[0].addr = Ipv4Address::MustParse("172.16.3.20");
  tenants[0].config_text = kTenantAConfig;
  tenants[1].addr = Ipv4Address::MustParse("172.16.3.21");
  tenants[1].config_text = kTenantBConfig;
  platform::Vm::VmId consolidated = box.InstallConsolidated(tenants, &error);
  if (consolidated == 0) {
    std::fprintf(stderr, "consolidated install failed: %s\n", error.c_str());
    return 1;
  }

  // Steady drip from t=1s: one packet per millisecond, round-robin across
  // the three tenant addresses.
  const std::vector<Ipv4Address> addrs = {dedicated_addr, tenants[0].addr, tenants[1].addr};
  const int packets = static_cast<int>((kHorizonSec - kTrafficStartSec - 1.0) * 1000);
  uint64_t sent = 0;
  for (int tick = 0; tick < packets; ++tick) {
    clock.ScheduleAt(sim::FromSeconds(kTrafficStartSec) + sim::FromMillis(tick),
                     [&box, &addrs, &sent, tick] {
                       Packet p = Packet::MakeUdp(
                           Ipv4Address::MustParse("9.9.9.9"),
                           addrs[static_cast<size_t>(tick) % addrs.size()],
                           static_cast<uint16_t>(7000 + tick % 64), 80, 64);
                       ++sent;
                       box.HandlePacket(p);
                     });
  }
  clock.RunUntil(sim::FromSeconds(kHorizonSec));

  box.ExportMetrics(&obs::Registry());
  obs::Health().EvaluateAll();
  obs::Tracer().ExportMetrics(&obs::Registry());

  // Walk totals straight from the registry (per-guest, summed here).
  uint64_t walks = 0;
  uint64_t sampled = 0;
  const obs::FlightRecorder& flight = box.flight_recorder();
  std::ostringstream folded;
  box.WriteFoldedStacks(folded);
  {
    // One folded line per distinct chain; weight = self-cost ns.
    std::istringstream lines(folded.str());
    std::string line;
    size_t chains = 0;
    while (std::getline(lines, line)) {
      ++chains;
    }
    std::printf("sent %llu packets, delivered %llu, %zu folded chains\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(delivered), chains);
  }
  for (platform::Vm::VmId id : box.vms().AllIds()) {
    platform::Vm* vm = box.vms().Find(id);
    if (vm != nullptr && vm->graph() != nullptr && vm->graph()->profiler() != nullptr) {
      walks += vm->graph()->profiler()->walks();
      sampled += vm->graph()->profiler()->sampled_walks();
    }
  }
  std::printf("packet walks profiled:  %llu (%llu sampled into the trace, 1/%u)\n",
              static_cast<unsigned long long>(walks),
              static_cast<unsigned long long>(sampled), kSampleN);
  std::printf("flight recorder:        %llu events, %zu postmortem bundles\n",
              static_cast<unsigned long long>(flight.recorded()), flight.postmortems().size());
  for (size_t i = 0; i < flight.postmortems().size(); ++i) {
    const obs::PostmortemBundle& bundle = flight.postmortems()[i];
    std::printf("  #%zu %s %s tenant=%s elements=%zu events=%zu\n", i + 1,
                obs::EventKindName(bundle.trigger), bundle.target.c_str(),
                bundle.tenant.c_str(), bundle.elements.size(), bundle.events.size());
  }
  if (flight.postmortems().empty()) {
    std::fprintf(stderr, "expected at least one crash postmortem under the fault plan\n");
    return 1;
  }

  if (!flight.WriteJsonFile("BENCH_dataplane_profile_postmortem.json")) {
    std::fprintf(stderr, "cannot write BENCH_dataplane_profile_postmortem.json\n");
    return 1;
  }
  std::printf("postmortems -> BENCH_dataplane_profile_postmortem.json\n");

  // Headline series for the CI regression gate: seeded packet counts and
  // profiler tallies, all deterministic, so zero tolerance.
  bench::BenchSeries series;
  series.Higher("delivered", static_cast<double>(delivered), 0.0, "packets");
  series.Higher("walks", static_cast<double>(walks), 0.0, "walks");
  series.Higher("sampled_walks", static_cast<double>(sampled), 0.0, "walks");
  series.Lower("postmortems", static_cast<double>(flight.postmortems().size()), 0.0, "bundles");

  obs::json::Value results = obs::json::Value::Object();
  results.Set("sent", sent);
  results.Set("delivered", delivered);
  results.Set("series", series.ToJson());
  results.Set("walks", walks);
  results.Set("sampled_walks", sampled);
  results.Set("sample_n", static_cast<uint64_t>(kSampleN));
  results.Set("seed", kSeed);
  results.Set("folded", folded.str());
  results.Set("flight", flight.ToJson());
  results.Set("metrics", obs::Registry().ToJson());
  if (!bench::WriteBenchJson("dataplane_profile", std::move(results))) {
    return 1;
  }
  return 0;
}
