// Beyond-the-paper experiment for §4.3's "Scaling the controller"
// discussion: per-request verification cost as the installed base grows.
// Every new deployment is checked against a snapshot containing every
// already-running module, so request latency creeps up with tenant count —
// the quantitative footing for the paper's conjecture that operators will
// shard controllers (per-client ordering preserved, cross-request conflicts
// limited to platform capacity).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/controller/controller.h"
#include "src/topology/network.h"

int main() {
  using namespace innet;
  using namespace innet::controller;

  bench::PrintHeader("Sec 4.3: request latency vs installed tenant base (single controller)");
  std::printf("%-18s %-20s %-22s\n", "installed tenants", "deploy latency (ms)",
              "deploys/sec (this core)");
  bench::PrintRule();

  Controller ctrl(topology::Network::MakeFigure3());
  ctrl.AddOperatorPolicy("reach from internet tcp src port 80 -> http_optimizer -> client");

  int installed = 0;
  for (int checkpoint : {1, 10, 25, 50, 100, 150, 200}) {
    double last_ms = 0;
    bench::WallTimer timer;
    int batch = 0;
    while (installed < checkpoint) {
      ClientRequest request;
      request.client_id = "tenant" + std::to_string(installed);
      request.requester = RequesterClass::kClient;
      request.click_config =
          "FromNetfront() -> IPFilter(allow udp dst port " +
          std::to_string(2000 + installed) + ") -> IPRewriter(pattern - - 10.10.0.5 - 0 0)"
          " -> ToNetfront();";
      request.requirements = "reach from internet udp -> client dst port " +
                             std::to_string(2000 + installed);
      request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
      request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
      bench::WallTimer one;
      DeployOutcome outcome = ctrl.Deploy(request);
      last_ms = one.ElapsedMs();
      if (!outcome.accepted) {
        std::printf("%-18d deployment failed: %s\n", installed, outcome.reason.c_str());
        return 1;
      }
      ++installed;
      ++batch;
    }
    double rate = batch / (timer.ElapsedSec() + 1e-9);
    std::printf("%-18d %-20.2f %-22.1f\n", installed, last_ms, rate);
  }
  std::printf("\n(each check re-verifies the snapshot with every installed module attached;\n"
              " the paper's answer to this growth is parallel controllers per client shard)\n");
  return 0;
}
