// Reproduces Figure 12: "In-Net platforms run many middleboxes on a single
// core with high aggregate throughput." Four middlebox types (NAT, IP
// router, firewall, flow meter), each instantiated in 1..100 VMs sharing one
// core, with client traffic split evenly.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/throughput_util.h"

namespace {

using namespace innet;

constexpr double kFrameBytes = 1500;

struct MiddleboxType {
  const char* name;
  const char* config;
};

const MiddleboxType kTypes[] = {
    {"nat",
     "src :: FromNetfront(); nat :: NatRewriter(PUBLIC 100.64.0.1); out :: ToNetfront();"
     "src -> nat; nat[0] -> out;"},
    {"iprouter",
     "src :: FromNetfront();"
     "rt :: LinearIPLookup(10.0.0.0/8 0, 172.16.0.0/12 1, 192.168.0.0/16 1, 0.0.0.0/0 0);"
     "a :: ToNetfront(); b :: ToNetfront(); src -> rt; rt[0] -> a; rt[1] -> b;"},
    {"firewall",
     "FromNetfront() -> IPFilter(deny src net 10.66.0.0/16, deny udp dst port 19,"
     " allow tcp, allow udp) -> ToNetfront();"},
    {"flowmeter", "FromNetfront() -> FlowMeter() -> ToNetfront();"},
};

}  // namespace

int main() {
  bench::PrintHeader("Figure 12: aggregate throughput, N middlebox VMs on one core");
  std::printf("%-10s", "#VMs");
  for (const MiddleboxType& type : kTypes) {
    std::printf(" %10s", type.name);
  }
  std::printf("   (Gbit/s)\n");
  bench::PrintRule();

  for (int vms : {1, 10, 20, 40, 60, 80, 100}) {
    std::printf("%-10d", vms);
    for (const MiddleboxType& type : kTypes) {
      std::vector<std::unique_ptr<click::Graph>> graphs;
      std::vector<std::vector<Packet>> templates;
      std::string error;
      for (int v = 0; v < vms; ++v) {
        auto graph = click::Graph::FromText(type.config, &error);
        if (graph == nullptr) {
          std::fprintf(stderr, "bad config: %s\n", error.c_str());
          return 1;
        }
        graphs.push_back(std::move(graph));
        templates.push_back({Packet::MakeUdp(
            Ipv4Address(Ipv4Address::MustParse("10.1.0.0").value() +
                        static_cast<uint32_t>(v)),
            Ipv4Address::MustParse("172.16.3.10"), static_cast<uint16_t>(5000 + v), 80,
            static_cast<size_t>(kFrameBytes) - 42)});
      }
      std::vector<click::Graph*> raw;
      for (auto& graph : graphs) {
        raw.push_back(graph.get());
      }
      double pps = bench::MeasureAggregatePps(raw, templates, 0.08);
      double gbps = std::min(pps * kFrameBytes * 8, bench::kLineRateBps) / 1e9;
      std::printf(" %10.2f", gbps);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: the platform sustains high aggregate throughput regardless of the\n"
              " number and type of middleboxes sharing the core)\n");
  return 0;
}
