// innet_check: command-line front end to the In-Net controller. Feed it a
// Click configuration (and optionally reach requirements) and it reports the
// static-analysis verdict — what an operator's request portal would run.
//
// Usage:
//   innet_check --config FILE [options]
//
// Options:
//   --config FILE          Click configuration to check (required)
//   --requirements FILE    reach statements, one or more
//   --requester KIND       third-party (default) | client | operator
//   --whitelist A[,B,...]  destinations the requester registered
//   --owned P[,Q,...]      source prefixes the requester owns
//   --topology KIND        figure3 (default) | scaling:N
//   --deploy               also run full placement on the topology
//   --verbose              print per-flow findings
//   --trace                print Figure-2-style symbolic traces per egress flow
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/controller/controller.h"
#include "src/controller/security.h"
#include "src/symexec/click_models.h"
#include "src/symexec/trace_render.h"
#include "src/topology/network.h"

namespace {

using namespace innet;
using namespace innet::controller;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE [--requirements FILE]\n"
               "          [--requester third-party|client|operator]\n"
               "          [--whitelist A[,B,...]] [--owned P[,Q,...]]\n"
               "          [--topology figure3|scaling:N] [--deploy] [--verbose]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string requirements_path;
  RequesterClass requester = RequesterClass::kThirdParty;
  std::vector<Ipv4Address> whitelist;
  std::vector<Ipv4Prefix> owned;
  std::string topology_kind = "figure3";
  bool deploy = false;
  bool verbose = false;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next("--config");
    } else if (arg == "--requirements") {
      requirements_path = next("--requirements");
    } else if (arg == "--requester") {
      std::string kind = next("--requester");
      if (kind == "third-party") {
        requester = RequesterClass::kThirdParty;
      } else if (kind == "client") {
        requester = RequesterClass::kClient;
      } else if (kind == "operator") {
        requester = RequesterClass::kOperator;
      } else {
        std::fprintf(stderr, "unknown requester '%s'\n", kind.c_str());
        return 2;
      }
    } else if (arg == "--whitelist") {
      for (const std::string& part : SplitCommas(next("--whitelist"))) {
        auto addr = Ipv4Address::Parse(part);
        if (!addr) {
          std::fprintf(stderr, "bad whitelist address '%s'\n", part.c_str());
          return 2;
        }
        whitelist.push_back(*addr);
      }
    } else if (arg == "--owned") {
      for (const std::string& part : SplitCommas(next("--owned"))) {
        auto prefix = Ipv4Prefix::Parse(part);
        if (!prefix) {
          std::fprintf(stderr, "bad owned prefix '%s'\n", part.c_str());
          return 2;
        }
        owned.push_back(*prefix);
      }
    } else if (arg == "--topology") {
      topology_kind = next("--topology");
    } else if (arg == "--deploy") {
      deploy = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (config_path.empty()) {
    return Usage(argv[0]);
  }

  std::string config_text;
  if (!ReadFile(config_path, &config_text)) {
    std::fprintf(stderr, "cannot read %s\n", config_path.c_str());
    return 1;
  }
  std::string requirements_text;
  if (!requirements_path.empty() && !ReadFile(requirements_path, &requirements_text)) {
    std::fprintf(stderr, "cannot read %s\n", requirements_path.c_str());
    return 1;
  }

  topology::Network network;
  if (topology_kind == "figure3") {
    network = topology::Network::MakeFigure3();
  } else if (topology_kind.rfind("scaling:", 0) == 0) {
    int n = std::atoi(topology_kind.c_str() + 8);
    if (n < 1) {
      std::fprintf(stderr, "bad scaling size\n");
      return 2;
    }
    network = topology::Network::MakeScalingTopology(n);
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", topology_kind.c_str());
    return 2;
  }

  // Stand-alone security verdict (uses a representative module address).
  std::string error;
  auto parsed = click::ConfigGraph::Parse(config_text, &error);
  if (!parsed) {
    std::printf("verdict: REJECTED (syntax error: %s)\n", error.c_str());
    return 1;
  }
  SecurityOptions options;
  options.requester = requester;
  options.module_addr = Ipv4Address::MustParse("172.16.3.10");
  options.whitelist = whitelist;
  options.owned_prefixes = owned;
  SecurityReport report = CheckModuleSecurity(*parsed, options, &error);
  std::printf("security verdict (%s): %s\n",
              std::string(RequesterClassName(requester)).c_str(),
              report.Summary().c_str());
  if (verbose) {
    for (const std::string& finding : report.findings) {
      std::printf("  - %s\n", finding.c_str());
    }
  }
  if (trace) {
    // Figure-2-style trace of every egress flow the checker explored.
    auto model = symexec::BuildClickModel(*parsed, &error);
    if (model) {
      for (const std::string& source : symexec::ModuleSources(*parsed)) {
        symexec::Engine engine;
        auto result =
            engine.Run(*model, model->FindNode(source), symexec::kPortInject,
                       symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
        for (size_t i = 0; i < result.delivered.size(); ++i) {
          std::printf("\nsymbolic flow %zu (via %s):\n%s", i + 1, source.c_str(),
                      symexec::RenderTrace(result.delivered[i]).c_str());
        }
      }
    }
  }
  if (report.verdict == Verdict::kRejected) {
    return 1;
  }
  if (!deploy) {
    return 0;
  }

  Controller controller(std::move(network));
  ClientRequest request;
  request.client_id = "cli";
  request.requester = requester;
  request.click_config = config_text;
  request.requirements = requirements_text;
  request.whitelist = whitelist;
  request.owned_prefixes = owned;
  DeployOutcome outcome = controller.Deploy(request);
  if (!outcome.accepted) {
    std::printf("placement: REJECTED (%s)\n", outcome.reason.c_str());
    return 1;
  }
  std::printf("placement: %s at %s%s\n", outcome.platform.c_str(),
              outcome.module_addr.ToString().c_str(),
              outcome.sandboxed ? " (sandboxed)" : "");
  std::printf("verification: %.2f ms model build + %.2f ms checking (%llu engine steps)\n",
              outcome.model_build_ms, outcome.check_ms,
              static_cast<unsigned long long>(outcome.engine_steps));
  return 0;
}
