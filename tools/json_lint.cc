// json_lint: validate JSON files with the obs strict parser. Exits 0 when
// every file parses; prints position + message and exits 1 otherwise. Used
// by scripts/regenerate_results.sh to gate BENCH_*.json artifacts.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read\n", argv[i]);
      rc = 1;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    innet::obs::json::Value value;
    std::string error;
    if (!innet::obs::json::Value::Parse(buffer.str(), &value, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      rc = 1;
    }
  }
  return rc;
}
