// innet_benchdiff: compare two bench telemetry snapshots under per-metric
// direction-aware tolerance rules — the perf-regression gate for CI.
//
// Usage:
//   innet_benchdiff BASELINE.json CANDIDATE.json [--json]
//   innet_benchdiff --self-test
//
// Both files are BENCH_*.json dumps whose results carry a `series` section
// (see src/obs/benchdiff.h for the format). Each metric declares its own
// direction (higher_is_better / lower_is_better) and tolerance; the rules are
// read from the BASELINE so a candidate cannot loosen its own gate. A metric
// missing from the candidate is a regression; a metric new in the candidate
// is reported but never fails.
//
// Exit codes: 0 = no regressions, 1 = at least one regression, 2 = bad
// usage / unreadable or malformed input. --json prints the full report as
// JSON instead of the table (the exit code is the contract either way).
//
// --self-test runs the built-in scenario suite (identical dumps pass, an
// injected slowdown fails, improvements pass, a dropped metric fails) and
// exits 0 only if every scenario behaves; CI runs it before trusting the
// gate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/benchdiff.h"
#include "src/obs/json.h"

namespace {

using innet::obs::BenchDiffEntry;
using innet::obs::BenchDiffReport;
using innet::obs::BenchSeriesEntry;
using innet::obs::BenchSeriesEntryJson;
using innet::obs::DiffBenchJson;
namespace json = innet::obs::json;

bool LoadJson(const std::string& path, json::Value* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return json::Value::Parse(buf.str(), out, error);
}

void PrintReport(const BenchDiffReport& report) {
  std::printf("bench: %s\n", report.bench.c_str());
  std::printf("%-28s %-10s %14s %14s %9s %7s  %s\n", "metric", "status", "baseline",
              "candidate", "change%", "tol%", "direction");
  std::printf("--------------------------------------------------------------------------------"
              "-------------\n");
  for (const BenchDiffEntry& entry : report.entries) {
    std::printf("%-28s %-10s %14.6g %14.6g %+9.2f %7.2g  %s\n", entry.metric.c_str(),
                entry.status.c_str(), entry.baseline, entry.candidate, entry.change_pct,
                entry.tolerance_pct, entry.direction.c_str());
  }
  // A series only the candidate carries is not a regression — the baseline
  // simply predates it. Say so explicitly per series, so a gate run against
  // an old baseline reads as "refresh the baseline", not as a bare failure.
  for (const BenchDiffEntry& entry : report.entries) {
    if (entry.status == "new") {
      std::printf("note: %s is new in the candidate (baseline predates it; refresh the "
                  "baseline to gate it)\n",
                  entry.metric.c_str());
    }
  }
  std::printf("%zu regression%s\n", report.regressions, report.regressions == 1 ? "" : "s");
}

// --- self-test --------------------------------------------------------------

json::Value MakeDoc(const std::string& bench, std::vector<BenchSeriesEntry> series) {
  json::Value arr = json::Value::Array();
  for (const BenchSeriesEntry& entry : series) {
    arr.Push(BenchSeriesEntryJson(entry));
  }
  json::Value results = json::Value::Object();
  results.Set("series", std::move(arr));
  json::Value doc = json::Value::Object();
  doc.Set("bench", bench);
  doc.Set("results", std::move(results));
  return doc;
}

bool Expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "self-test FAILED: %s\n", what);
  }
  return ok;
}

int SelfTest() {
  bool ok = true;
  std::string error;
  BenchDiffReport report;

  BenchSeriesEntry rate{"throughput_pps", 1000.0, "higher_is_better", 5.0, "pps"};
  BenchSeriesEntry latency{"verify_p99_ms", 20.0, "lower_is_better", 10.0, "ms"};
  BenchSeriesEntry giveups{"giveups", 0.0, "lower_is_better", 0.0, "count"};
  json::Value base = MakeDoc("demo", {rate, latency, giveups});

  // 1. Identical dumps: zero regressions.
  ok &= Expect(DiffBenchJson(base, base, &report, &error) && report.ok(),
               "identical dumps must pass");

  // 2. Injected slowdown: latency above tolerance must regress.
  BenchSeriesEntry slow = latency;
  slow.value = 30.0;  // +50% against a 10% gate
  ok &= Expect(DiffBenchJson(base, MakeDoc("demo", {rate, slow, giveups}), &report, &error) &&
                   report.regressions == 1 && report.entries[1].status == "regressed",
               "a 50% slowdown against a 10% gate must regress");

  // 3. Drift inside tolerance passes both directions.
  BenchSeriesEntry rate_drift = rate;
  rate_drift.value = 960.0;  // -4% against a 5% gate
  BenchSeriesEntry lat_drift = latency;
  lat_drift.value = 21.0;  // +5% against a 10% gate
  ok &= Expect(
      DiffBenchJson(base, MakeDoc("demo", {rate_drift, lat_drift, giveups}), &report, &error) &&
          report.ok(),
      "drift inside tolerance must pass");

  // 4. Improvements never fail (and are labeled).
  BenchSeriesEntry faster = latency;
  faster.value = 10.0;
  ok &= Expect(DiffBenchJson(base, MakeDoc("demo", {rate, faster, giveups}), &report, &error) &&
                   report.ok() && report.entries[1].status == "improved",
               "an improvement must pass and be labeled improved");

  // 5. Throughput drop beyond tolerance regresses (higher_is_better side).
  BenchSeriesEntry slower_rate = rate;
  slower_rate.value = 900.0;  // -10% against a 5% gate
  ok &= Expect(
      DiffBenchJson(base, MakeDoc("demo", {slower_rate, latency, giveups}), &report, &error) &&
          report.regressions == 1 && report.entries[0].status == "regressed",
      "a throughput drop beyond tolerance must regress");

  // 6. Zero-baseline counter: any appearance is a regression.
  BenchSeriesEntry one_giveup = giveups;
  one_giveup.value = 1.0;
  ok &= Expect(
      DiffBenchJson(base, MakeDoc("demo", {rate, latency, one_giveup}), &report, &error) &&
          report.regressions == 1,
      "0 -> 1 on a lower_is_better counter must regress");

  // 7. A metric dropped from the candidate is a regression; a new one is not.
  BenchSeriesEntry extra{"new_counter", 7.0, "lower_is_better", 0.0, "count"};
  ok &= Expect(DiffBenchJson(base, MakeDoc("demo", {rate, latency, extra}), &report, &error) &&
                   report.regressions == 1 && report.entries[2].status == "missing" &&
                   report.entries[3].status == "new",
               "dropped metric fails, new metric does not");

  // 8. Bench name mismatch is a usage error, not a pass.
  ok &= Expect(!DiffBenchJson(base, MakeDoc("other", {rate, latency, giveups}), &report, &error),
               "bench name mismatch must be rejected");

  // 9. Malformed docs are rejected.
  json::Value empty = json::Value::Object();
  ok &= Expect(!DiffBenchJson(base, empty, &report, &error), "doc without results is rejected");

  // 10. A fleet-observability series added after the baseline was committed
  // (the federated-metrics rollout case) is "new", never a regression: the
  // gate must keep passing until the baseline is refreshed.
  BenchSeriesEntry fleet_incidents{"fleet_incidents_total", 0.0, "lower_is_better", 0.0,
                                   "incidents"};
  ok &= Expect(
      DiffBenchJson(base, MakeDoc("demo", {rate, latency, giveups, fleet_incidents}), &report,
                    &error) &&
          report.ok() && report.entries.size() == 4 && report.entries[3].status == "new",
      "a candidate-only fleet series must report as new and keep the gate green");

  std::printf("innet_benchdiff self-test: %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test") {
      return SelfTest();
    } else if (arg == "--json") {
      as_json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CANDIDATE.json [--json]\n"
                 "       %s --self-test\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::string error;
  json::Value baseline;
  json::Value candidate;
  if (!LoadJson(paths[0], &baseline, &error) || !LoadJson(paths[1], &candidate, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  BenchDiffReport report;
  if (!DiffBenchJson(baseline, candidate, &report, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (as_json) {
    std::printf("%s\n", report.ToJson().ToString(2).c_str());
  } else {
    PrintReport(report);
  }
  return report.ok() ? 0 : 1;
}
