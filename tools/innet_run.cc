// innet_run: run a Click configuration and trace packets through it — the
// developer-facing debugging loop for writing In-Net modules.
//
// Usage:
//   innet_run --config FILE [--packets FILE] [--clock-until SECONDS]
//             [--metrics-out FILE] [--trace-out FILE] [--perfetto-out FILE]
//             [--health-out FILE]
//             [--timeseries-out FILE] [--timeseries-window-ms W]
//             [--placement-policy first_fit|least_loaded|bin_pack]
//             [--dataplane-sample-n N] [--dataplane-seed S]
//             [--int-sample-n N] [--int-out FILE]
//             [--folded-out FILE] [--flight-recorder-depth K] [--flight-out FILE]
//             [--control-loss P] [--control-dup P] [--control-reorder P]
//             [--control-delay-ms D] [--control-seed S]
//
// The packets file has one packet per line:
//   udp  SRC[:SPORT] DST[:DPORT] [payload "TEXT"] [at SECONDS]
//   tcp  SRC[:SPORT] DST[:DPORT] [syn] [payload "TEXT"] [at SECONDS]
//   icmp SRC DST [at SECONDS]
// Without --packets, a single UDP probe to the first ToNetfront is sent.
//
// With any of the dump flags, the config additionally goes through the full
// stack: the orchestrator admits the request, the placement engine ranks the
// Figure 3 platforms (--placement-policy, default first_fit), the controller
// verifies the candidates in order, and a ClickOS guest boots on the chosen
// platform — so the dump contains admission/verification/boot telemetry next
// to the per-element packet counters, and the trace contains one connected
// deploy span tree (deploy_request → admission → verify → boot → cutover).
// Everything derives from the simulated clock and deterministic work counts:
// two runs produce byte-identical files.
//
// --trace-out writes the native event dump; --perfetto-out writes the same
// events as Chrome/Perfetto trace_event JSON (load in ui.perfetto.dev).
// --health-out writes the per-tenant SLO health report.
//
// Data-plane telemetry: --dataplane-sample-n N turns on per-element profiling
// (folded-stack attribution for every packet, plus a full element-by-element
// walk trace for 1 in N packets, chosen deterministically from
// --dataplane-seed). --folded-out writes the folded chains
// ("prefix;a;b;c weight") for flamegraph.pl / speedscope. The platform's
// flight recorder is always on; --flight-recorder-depth sizes its ring and
// --flight-out dumps the ring + any post-mortem bundles as JSON
// (render with innet_top --postmortem).
//
// In-band telemetry: --int-sample-n N tags 1 in N packet walks
// (deterministic, seeded from --dataplane-seed) with an in-band hop stack;
// each tagged packet carries per-element hop records to its egress or drop
// point, where the collector folds them into per-tenant path latency and —
// once the full-stack deploy has registered the verify-time path digest —
// attests the observed element sequence against the SymNet-verified path
// set, counting innet_path_conformance_violations_total on mismatch.
// --int-out dumps the collector (render with innet_top --int).
//
// Time-series telemetry: --timeseries-out samples every registry instrument
// on a fixed sim-clock cadence (--timeseries-window-ms, default 100) into
// bounded per-metric rings — counters become per-window rates, histograms
// windowed p50/p99 — and dumps them with any anomaly flags the EWMA detector
// raised (drop-rate spikes, verify-latency inflation, control retry storms).
// Like every other dump, the file is byte-identical across repeat seeded
// runs. Render with innet_top --timeseries.
//
// Control-plane chaos: any of --control-loss/--control-dup/--control-reorder/
// --control-delay-ms routes the install over the lossy control channel
// (seeded from --control-seed, default 42) instead of the fault-exempt direct
// path, so the orchestrator's idempotent retries and deploy journal do the
// converging; a channel counter summary is printed after the deploy.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/controller/controller.h"
#include "src/controller/orchestrator.h"
#include "src/obs/health.h"
#include "src/obs/int_telemetry.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

struct PacketSpec {
  Packet packet;
  double at_sec = 0;
};

bool ParseEndpoint(const std::string& text, Ipv4Address* addr, uint16_t* port) {
  size_t colon = text.find(':');
  std::string addr_text = colon == std::string::npos ? text : text.substr(0, colon);
  auto parsed = Ipv4Address::Parse(addr_text);
  if (!parsed) {
    return false;
  }
  *addr = *parsed;
  if (colon != std::string::npos) {
    *port = static_cast<uint16_t>(std::atoi(text.c_str() + colon + 1));
  }
  return true;
}

bool ParsePacketLine(const std::string& line, PacketSpec* spec, std::string* error) {
  std::istringstream in(line);
  std::string proto;
  std::string src_text;
  std::string dst_text;
  if (!(in >> proto >> src_text >> dst_text)) {
    *error = "expected: PROTO SRC DST ...";
    return false;
  }
  Ipv4Address src;
  Ipv4Address dst;
  uint16_t sport = 1234;
  uint16_t dport = 80;
  if (!ParseEndpoint(src_text, &src, &sport) || !ParseEndpoint(dst_text, &dst, &dport)) {
    *error = "bad address in '" + line + "'";
    return false;
  }

  bool syn = false;
  std::string payload;
  std::string word;
  double at = 0;
  while (in >> word) {
    if (word == "syn") {
      syn = true;
    } else if (word == "payload") {
      std::string rest;
      std::getline(in, rest);
      size_t open = rest.find('"');
      size_t close = rest.rfind('"');
      if (open == std::string::npos || close <= open) {
        *error = "payload needs \"quotes\"";
        return false;
      }
      payload = rest.substr(open + 1, close - open - 1);
      std::istringstream tail(rest.substr(close + 1));
      std::string t;
      while (tail >> t) {
        if (t == "at") {
          tail >> at;
        }
      }
      break;
    } else if (word == "at") {
      in >> at;
    } else {
      *error = "unknown token '" + word + "'";
      return false;
    }
  }

  size_t payload_len = payload.empty() ? 32 : payload.size();
  if (proto == "udp") {
    spec->packet = Packet::MakeUdp(src, dst, sport, dport, payload_len);
  } else if (proto == "tcp") {
    spec->packet = Packet::MakeTcp(src, dst, sport, dport, syn ? kTcpSyn : 0, payload_len);
  } else if (proto == "icmp") {
    spec->packet = Packet::MakeIcmpEcho(src, dst, sport, dport);
  } else {
    *error = "unknown protocol '" + proto + "'";
    return false;
  }
  if (!payload.empty()) {
    spec->packet.SetPayload(payload);
  }
  spec->at_sec = at;
  return true;
}

// Recurring sampling tick: each firing closes the current window and
// schedules the next. Stack-allocated in main; events only run inside
// RunUntil windows, so the self-reschedule cannot spin.
struct SamplerTicker {
  sim::EventQueue* clock = nullptr;
  obs::TimeSeriesSampler* sampler = nullptr;
  void Schedule() {
    clock->ScheduleAfter(sampler->window_ns(), [this] {
      sampler->SampleWindow(clock->now());
      Schedule();
    });
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string packets_path;
  std::string metrics_out;
  std::string trace_out;
  std::string perfetto_out;
  std::string health_out;
  std::string placement_policy;
  std::string folded_out;
  std::string flight_out;
  std::string timeseries_out;
  double timeseries_window_ms = 100;
  double clock_until = 1.0;
  uint32_t sample_n = 0;
  uint32_t int_sample_n = 0;
  std::string int_out;
  uint64_t dataplane_seed = 0;
  size_t flight_depth = 0;  // 0 = keep the recorder's default
  double control_loss = 0;
  double control_dup = 0;
  double control_reorder = 0;
  double control_delay_ms = 0;
  uint64_t control_seed = 42;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--packets" && i + 1 < argc) {
      packets_path = argv[++i];
    } else if (arg == "--clock-until" && i + 1 < argc) {
      clock_until = std::atof(argv[++i]);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--perfetto-out" && i + 1 < argc) {
      perfetto_out = argv[++i];
    } else if (arg == "--health-out" && i + 1 < argc) {
      health_out = argv[++i];
    } else if (arg == "--timeseries-out" && i + 1 < argc) {
      timeseries_out = argv[++i];
    } else if (arg == "--timeseries-window-ms" && i + 1 < argc) {
      timeseries_window_ms = std::atof(argv[++i]);
    } else if (arg == "--placement-policy" && i + 1 < argc) {
      placement_policy = argv[++i];
    } else if (arg == "--dataplane-sample-n" && i + 1 < argc) {
      sample_n = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--dataplane-seed" && i + 1 < argc) {
      dataplane_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--int-sample-n" && i + 1 < argc) {
      int_sample_n = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--int-out" && i + 1 < argc) {
      int_out = argv[++i];
    } else if (arg == "--folded-out" && i + 1 < argc) {
      folded_out = argv[++i];
    } else if (arg == "--flight-recorder-depth" && i + 1 < argc) {
      flight_depth = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--flight-out" && i + 1 < argc) {
      flight_out = argv[++i];
    } else if (arg == "--control-loss" && i + 1 < argc) {
      control_loss = std::atof(argv[++i]);
    } else if (arg == "--control-dup" && i + 1 < argc) {
      control_dup = std::atof(argv[++i]);
    } else if (arg == "--control-reorder" && i + 1 < argc) {
      control_reorder = std::atof(argv[++i]);
    } else if (arg == "--control-delay-ms" && i + 1 < argc) {
      control_delay_ms = std::atof(argv[++i]);
    } else if (arg == "--control-seed" && i + 1 < argc) {
      control_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s --config FILE [--packets FILE] [--clock-until SECONDS]\n"
                   "          [--metrics-out FILE] [--trace-out FILE] [--perfetto-out FILE]\n"
                   "          [--health-out FILE]\n"
                   "          [--timeseries-out FILE] [--timeseries-window-ms W]\n"
                   "          [--placement-policy first_fit|least_loaded|bin_pack]\n"
                   "          [--dataplane-sample-n N] [--dataplane-seed S]\n"
                   "          [--int-sample-n N] [--int-out FILE]\n"
                   "          [--folded-out FILE] [--flight-recorder-depth K] "
                   "[--flight-out FILE]\n"
                   "          [--control-loss P] [--control-dup P] [--control-reorder P]\n"
                   "          [--control-delay-ms D] [--control-seed S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (config_path.empty()) {
    std::fprintf(stderr, "--config is required\n");
    return 2;
  }

  std::ifstream config_in(config_path);
  if (!config_in) {
    std::fprintf(stderr, "cannot read %s\n", config_path.c_str());
    return 1;
  }
  std::ostringstream config_buf;
  config_buf << config_in.rdbuf();

  scheduler::PlacementPolicyKind policy_kind = scheduler::PlacementPolicyKind::kFirstFit;
  if (!placement_policy.empty() &&
      !scheduler::ParsePlacementPolicy(placement_policy, &policy_kind)) {
    std::fprintf(stderr, "unknown placement policy '%s' (want first_fit|least_loaded|bin_pack)\n",
                 placement_policy.c_str());
    return 2;
  }
  const bool want_int = int_sample_n > 0 || !int_out.empty();
  if (want_int) {
    if (int_sample_n == 0) {
      int_sample_n = 1;  // --int-out alone means "tag every walk"
    }
    obs::Int().Enable();
  }
  const bool want_profiling = sample_n > 0 || !folded_out.empty() || want_int;
  const bool want_timeseries = !timeseries_out.empty();
  const bool want_obs = !metrics_out.empty() || !trace_out.empty() || !perfetto_out.empty() ||
                        !health_out.empty() || want_timeseries;
  const bool want_control_faults =
      control_loss > 0 || control_dup > 0 || control_reorder > 0 || control_delay_ms > 0;
  const bool want_stack = want_obs || !placement_policy.empty() || want_profiling ||
                          !flight_out.empty() || want_control_faults;
  sim::EventQueue clock;
  if (want_obs) {
    obs::Tracer().Enable();
    obs::Tracer().SetTimeSource([&clock] { return clock.now(); });
    obs::Health().Enable();
  }
  // The sampler rides the sim clock: one tick per window, rescheduled from
  // inside each tick, plus a final flush before the dump so the tail of the
  // run (after the last whole window) still lands in the series.
  obs::TimeSeriesSampler sampler;
  obs::AnomalyDetector detector;
  SamplerTicker ticker{&clock, &sampler};
  if (want_timeseries) {
    if (timeseries_window_ms <= 0) {
      std::fprintf(stderr, "--timeseries-window-ms must be > 0\n");
      return 2;
    }
    sampler.set_window_ns(static_cast<uint64_t>(timeseries_window_ms * 1e6));
    detector.UseDefaultRules();
    sampler.AttachDetector(&detector);
    ticker.Schedule();
  }
  std::string error;
  auto graph = click::Graph::FromText(config_buf.str(), &error, &clock);
  if (graph == nullptr) {
    std::fprintf(stderr, "configuration error: %s\n", error.c_str());
    return 1;
  }
  std::printf("loaded %zu elements from %s\n", graph->elements().size(), config_path.c_str());
  if (want_profiling) {
    click::GraphProfilerConfig profile_config;
    profile_config.sample_n = sample_n;
    profile_config.int_sample_n = int_sample_n;
    profile_config.seed = dataplane_seed;
    profile_config.walk_prefix = "run";
    // The standalone graph belongs wholly to the "run" client — the same key
    // the full-stack deploy below registers its path digest under.
    profile_config.int_tenant = [](int) { return std::string("run"); };
    graph->EnableProfiling(profile_config);
  }

  std::vector<PacketSpec> specs;
  if (!packets_path.empty()) {
    std::ifstream packets_in(packets_path);
    if (!packets_in) {
      std::fprintf(stderr, "cannot read %s\n", packets_path.c_str());
      return 1;
    }
    std::string line;
    int line_no = 0;
    while (std::getline(packets_in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') {
        continue;
      }
      PacketSpec spec;
      if (!ParsePacketLine(line, &spec, &error)) {
        std::fprintf(stderr, "%s:%d: %s\n", packets_path.c_str(), line_no, error.c_str());
        return 1;
      }
      specs.push_back(std::move(spec));
    }
  } else {
    PacketSpec spec;
    spec.packet = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                                  Ipv4Address::MustParse("172.16.3.10"), 1234, 80, 32);
    specs.push_back(std::move(spec));
  }

  // Hop-by-hop trace of every forward, plus delivery/drop accounting.
  click::ScopedPacketTrace trace(
      [](const click::Element& from, int out_port, const Packet& packet) {
        std::printf("    %s[%d] -> %s\n", from.name().c_str(), out_port,
                    packet.Describe().c_str());
      });
  for (const auto& element : graph->elements()) {
    if (auto* sink = dynamic_cast<click::ToNetfront*>(element.get())) {
      sink->set_handler([name = element->name()](Packet& packet) {
        std::printf("    => delivered at %s: %s\n", name.c_str(),
                    packet.Describe().c_str());
      });
    }
  }

  for (PacketSpec& spec : specs) {
    clock.ScheduleAt(sim::FromSeconds(spec.at_sec), [&graph, &spec, &clock] {
      std::printf("t=%.3f s inject: %s\n", sim::ToSeconds(clock.now()),
                  spec.packet.Describe().c_str());
      Packet p = spec.packet;
      graph->InjectAtSource(p);
    });
  }
  clock.RunUntil(sim::FromSeconds(clock_until));

  std::printf("\nelement drop counters:\n");
  for (const auto& element : graph->elements()) {
    if (element->drops() > 0) {
      std::printf("  %-24s %llu dropped\n", element->name().c_str(),
                  static_cast<unsigned long long>(element->drops()));
    }
  }

  platform::InNetPlatform* box = nullptr;
  if (want_stack) {
    // Full-stack pass: the orchestrator admits the request, the placement
    // engine ranks the Figure 3 platforms by the chosen policy, the
    // controller verifies the candidates in order, and the module boots as a
    // ClickOS guest on the chosen platform — one connected deploy span tree.
    controller::OrchestratorOptions options;
    options.policy = policy_kind;
    controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);
    // With control faults requested, the install travels over the lossy
    // channel (seeded, so a given flag set replays identically) and the
    // orchestrator's retry/journal machinery does the converging.
    std::optional<sim::FaultInjector> control_faults;
    if (want_control_faults) {
      sim::FaultPlan plan;
      plan.seed = control_seed;
      plan.control_loss_p = control_loss;
      plan.control_dup_p = control_dup;
      plan.control_reorder_p = control_reorder;
      plan.control_delay_mean_ms = control_delay_ms;
      control_faults.emplace(plan);
      orch.SetControlFaults(&*control_faults);
    }
    controller::ClientRequest request;
    request.client_id = "run";
    request.requester = controller::RequesterClass::kOperator;
    request.click_config = config_buf.str();
    controller::OrchestratedDeploy deployed;
    if (want_control_faults) {
      bool deploy_done = false;
      orch.DeployViaChannel(request, [&](const controller::OrchestratedDeploy& result) {
        deploy_done = true;
        deployed = result;
      });
      // Pump the clock until the retry machinery settles (converges or gives
      // up — either way the callback fires exactly once).
      for (int spins = 0; !deploy_done && spins < 600; ++spins) {
        clock.RunUntil(clock.now() + sim::FromMillis(100));
      }
      std::printf("\ncontrol channel: sent=%llu delivered=%llu dropped=%llu duplicated=%llu "
                  "deduped=%llu retries=%llu timeouts=%llu giveups=%llu\n",
                  static_cast<unsigned long long>(orch.channel().sent()),
                  static_cast<unsigned long long>(orch.channel().delivered()),
                  static_cast<unsigned long long>(orch.channel().dropped()),
                  static_cast<unsigned long long>(orch.channel().duplicated()),
                  static_cast<unsigned long long>(orch.channel().deduped()),
                  static_cast<unsigned long long>(orch.control_client().retries()),
                  static_cast<unsigned long long>(orch.control_client().timeouts()),
                  static_cast<unsigned long long>(orch.control_client().giveups()));
      if (!deploy_done) {
        std::fprintf(stderr, "control-channel deploy never completed\n");
        return 1;
      }
    } else {
      deployed = orch.Deploy(request);
    }
    if (!deployed.outcome.accepted) {
      std::printf("\nplacement: policy=%s rejected: %s\n",
                  scheduler::PlacementPolicyName(policy_kind),
                  deployed.outcome.reason.c_str());
    } else {
      std::printf("\nplacement: policy=%s -> %s at %s (%s, vm %llu)\n",
                  scheduler::PlacementPolicyName(policy_kind),
                  deployed.outcome.platform.c_str(),
                  deployed.outcome.module_addr.ToString().c_str(),
                  deployed.consolidated ? "consolidated" : "dedicated",
                  static_cast<unsigned long long>(deployed.vm_id));
      clock.RunUntil(clock.now() + sim::FromSeconds(2));
      box = orch.platform(deployed.outcome.platform);
      if (flight_depth > 0) {
        box->flight_recorder().set_depth(flight_depth);
      }
      if (want_profiling) {
        box->EnableDataplaneProfiling(sample_n, dataplane_seed, int_sample_n);
      }
      for (const PacketSpec& spec : specs) {
        Packet p = spec.packet;
        p.set_ip_dst(deployed.outcome.module_addr);
        box->HandlePacket(p);
      }
      clock.RunUntil(clock.now() + sim::FromSeconds(1));
      box->ExportMetrics(&obs::Registry());
      orch.engine().ledger().ExportHeadroomGauges();
    }
    obs::Health().EvaluateAll();

    // These dumps read the orchestrator's platforms, so they happen before
    // the orchestrator goes out of scope.
    if (!folded_out.empty()) {
      std::ofstream out(folded_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", folded_out.c_str());
        return 1;
      }
      graph->WriteFolded(out);
      if (box != nullptr) {
        box->WriteFoldedStacks(out);
      }
      std::printf("folded stacks -> %s\n", folded_out.c_str());
    }
    if (!flight_out.empty()) {
      obs::FlightRecorder none;
      obs::FlightRecorder& flight = box != nullptr ? box->flight_recorder() : none;
      if (!flight.WriteJsonFile(flight_out)) {
        std::fprintf(stderr, "cannot write %s\n", flight_out.c_str());
        return 1;
      }
      std::printf("flight recorder: %llu events, %zu postmortems -> %s\n",
                  static_cast<unsigned long long>(flight.recorded()),
                  flight.postmortems().size(), flight_out.c_str());
    }
  }
  graph->ExportMetrics(&obs::Registry());
  obs::Tracer().ExportMetrics(&obs::Registry());

  if (!metrics_out.empty()) {
    if (!obs::Registry().WriteJsonFile(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics: %zu instruments -> %s\n", obs::Registry().MetricNames().size(),
                metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer().WriteJsonFile(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s\n", obs::Tracer().events().size(), trace_out.c_str());
  }
  if (!perfetto_out.empty()) {
    if (!obs::Tracer().WritePerfettoFile(perfetto_out)) {
      std::fprintf(stderr, "cannot write %s\n", perfetto_out.c_str());
      return 1;
    }
    std::printf("perfetto: %zu events -> %s\n", obs::Tracer().events().size(),
                perfetto_out.c_str());
  }
  if (!health_out.empty()) {
    if (!obs::Health().WriteJsonFile(health_out)) {
      std::fprintf(stderr, "cannot write %s\n", health_out.c_str());
      return 1;
    }
    std::printf("health: %zu tenants -> %s\n", obs::Health().tenant_count(),
                health_out.c_str());
  }
  if (!int_out.empty()) {
    if (!obs::Int().WriteJsonFile(int_out)) {
      std::fprintf(stderr, "cannot write %s\n", int_out.c_str());
      return 1;
    }
    std::printf("int: %llu postcards, %llu violations -> %s\n",
                static_cast<unsigned long long>(obs::Int().postcards()),
                static_cast<unsigned long long>(obs::Int().violations()), int_out.c_str());
  }
  if (want_timeseries) {
    sampler.SampleWindow(clock.now());  // flush the partial tail window
    if (!sampler.WriteJsonFile(timeseries_out)) {
      std::fprintf(stderr, "cannot write %s\n", timeseries_out.c_str());
      return 1;
    }
    std::printf("timeseries: %zu series over %llu windows, %zu anomalies -> %s\n",
                sampler.series_count(),
                static_cast<unsigned long long>(sampler.windows_sampled()),
                detector.flags().size(), timeseries_out.c_str());
  }
  return 0;
}
