// innet_top: a deterministic status-table inspector for In-Net telemetry —
// the operator's "why is this tenant slow?" view.
//
// Usage:
//   innet_top --metrics FILE [--trace FILE] [--health FILE] [--postmortem FILE]
//             [--timeseries FILE] [--int FILE]
//   innet_top --postmortem FILE
//   innet_top --timeseries FILE
//   innet_top --int FILE
//   innet_top --run CONFIG [--placement-policy first_fit|least_loaded|bin_pack]
//
// Offline mode reads a metrics dump (either the registry's native
// {"metrics": [...]} shape, or a bench snapshot whose results embed one under
// results.metrics, e.g. BENCH_placement_scaling.json) and renders per-tenant
// health/latency/drop rows, per-platform utilization rows, and the fleet
// totals. --trace adds a per-kind event summary from a trace dump; --health
// overrides the health-state column with a health report file.
//
// --postmortem renders a flight-recorder dump (innet_run --flight-out, or the
// one bench/dataplane_profile writes): per crash/give-up/abort bundle, the
// dying graph's element counters and the last-K events leading up to it.
//
// --timeseries renders a TRENDS section from an innet_run --timeseries-out
// dump: ASCII sparklines per tenant-labeled series (grouped by tenant), a
// fleet row for the headline platform counters, and any anomaly flags the
// EWMA detector raised during the run.
//
// --int renders a PATHS section from an innet_run --int-out dump: per tenant,
// every observed element chain with packet counts and hop latency, marked
// against the verify-time path digest — ** PATH VIOLATION ** rows are chains
// the symbolic engine never produced for that tenant's config. Degrades to a
// "no data" note on missing, truncated, or pre-INT dumps.
//
// Live mode (--run) performs one full-stack orchestrated deploy of CONFIG on
// the Figure 3 topology — admission, placement, verification, ClickOS boot,
// a few probe packets — and renders the same tables from the fresh registry.
//
// All output derives from the dump contents (or the simulated clock in live
// mode): the same input always renders byte-identical tables. A missing,
// truncated, or shape-mismatched dump degrades to a per-section "no data"
// line — partial telemetry never turns into an error or garbage rows.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/controller/orchestrator.h"
#include "src/obs/health.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"
#include "src/sim/event_queue.h"
#include "src/topology/network.h"

namespace {

using namespace innet;

// One instrument row lifted out of the JSON dump.
struct Instrument {
  std::string name;
  std::map<std::string, std::string> labels;
  std::string type;
  double value = 0;  // counter / gauge
  uint64_t count = 0;
  double sum = 0;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;

  const std::string* Label(const std::string& key) const {
    auto it = labels.find(key);
    return it == labels.end() ? nullptr : &it->second;
  }
};

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Accepts the registry's native dump ({"metrics": [...]}) or a bench
// snapshot embedding one under results.metrics.
const obs::json::Value* FindMetricsArray(const obs::json::Value& root) {
  const obs::json::Value* metrics = root.Find("metrics");
  if (metrics != nullptr && metrics->is_array()) {
    return metrics;
  }
  const obs::json::Value* results = root.Find("results");
  if (results != nullptr) {
    const obs::json::Value* embedded = results->Find("metrics");
    if (embedded != nullptr) {
      metrics = embedded->Find("metrics");
      if (metrics != nullptr && metrics->is_array()) {
        return metrics;
      }
    }
  }
  return nullptr;
}

std::vector<Instrument> ParseInstruments(const obs::json::Value& metrics) {
  std::vector<Instrument> out;
  for (size_t i = 0; i < metrics.size(); ++i) {
    const obs::json::Value& entry = metrics.at(i);
    Instrument inst;
    if (const auto* name = entry.Find("name")) {
      inst.name = name->string_value();
    }
    if (const auto* type = entry.Find("type")) {
      inst.type = type->string_value();
    }
    if (const auto* labels = entry.Find("labels")) {
      for (const auto& [key, value] : labels->members()) {
        inst.labels[key] = value.string_value();
      }
    }
    if (const auto* value = entry.Find("value")) {
      inst.value = value->number();
    }
    if (const auto* count = entry.Find("count")) {
      inst.count = static_cast<uint64_t>(count->int_number());
    }
    if (const auto* sum = entry.Find("sum")) {
      inst.sum = sum->number();
    }
    if (const auto* bounds = entry.Find("bounds")) {
      for (size_t b = 0; b < bounds->size(); ++b) {
        inst.bounds.push_back(bounds->at(b).number());
      }
    }
    if (const auto* buckets = entry.Find("buckets")) {
      for (size_t b = 0; b < buckets->size(); ++b) {
        inst.buckets.push_back(static_cast<uint64_t>(buckets->at(b).int_number()));
      }
    }
    out.push_back(std::move(inst));
  }
  return out;
}

const Instrument* FindInstrument(const std::vector<Instrument>& instruments,
                                 const std::string& name, const std::string& label_key = "",
                                 const std::string& label_value = "") {
  for (const Instrument& inst : instruments) {
    if (inst.name != name) {
      continue;
    }
    if (label_key.empty()) {
      return &inst;
    }
    const std::string* value = inst.Label(label_key);
    if (value != nullptr && *value == label_value) {
      return &inst;
    }
  }
  return nullptr;
}

double CounterValue(const std::vector<Instrument>& instruments, const std::string& name,
                    const std::string& label_key = "", const std::string& label_value = "") {
  const Instrument* inst = FindInstrument(instruments, name, label_key, label_value);
  return inst == nullptr ? 0 : inst->value;
}

const char* HealthNameForLevel(double level) {
  if (level >= 2) {
    return "violated";
  }
  if (level >= 1) {
    return "degraded";
  }
  return "ok";
}

void RenderTenants(const std::vector<Instrument>& instruments,
                   const obs::json::Value* health_root) {
  // Health report states (when a --health file was given) win over the
  // innet_tenant_health_state gauge.
  std::map<std::string, std::string> report_states;
  if (health_root != nullptr) {
    if (const auto* tenants = health_root->Find("tenants")) {
      for (size_t i = 0; i < tenants->size(); ++i) {
        const auto* tenant = tenants->at(i).Find("tenant");
        const auto* state = tenants->at(i).Find("state");
        if (tenant != nullptr && state != nullptr) {
          report_states[tenant->string_value()] = state->string_value();
        }
      }
    }
  }

  std::set<std::string> tenants;
  for (const Instrument& inst : instruments) {
    if (inst.name.rfind("innet_tenant_", 0) == 0) {
      const std::string* tenant = inst.Label("tenant");
      if (tenant != nullptr) {
        tenants.insert(*tenant);
      }
    }
  }
  if (tenants.empty()) {
    std::printf("TENANTS: none (per-tenant health monitor not enabled for this dump)\n\n");
    return;
  }

  std::printf("TENANTS (%zu)\n", tenants.size());
  std::printf("%-16s %-9s %9s %9s %10s %9s %7s %6s %8s\n", "tenant", "health", "boot_p50",
              "boot_p99", "verify_p99", "buffered", "drops", "drop%", "restarts");
  for (const std::string& tenant : tenants) {
    std::string health = "ok";
    auto reported = report_states.find(tenant);
    if (reported != report_states.end()) {
      health = reported->second;
    } else if (const Instrument* gauge =
                   FindInstrument(instruments, "innet_tenant_health_state", "tenant", tenant)) {
      health = HealthNameForLevel(gauge->value);
    }
    const Instrument* boot =
        FindInstrument(instruments, "innet_tenant_boot_latency_ms", "tenant", tenant);
    const Instrument* verify =
        FindInstrument(instruments, "innet_tenant_verify_latency_ms", "tenant", tenant);
    double buffered =
        CounterValue(instruments, "innet_tenant_buffered_packets_total", "tenant", tenant);
    double drops =
        CounterValue(instruments, "innet_tenant_buffer_drops_total", "tenant", tenant);
    double restarts =
        CounterValue(instruments, "innet_tenant_restarts_total", "tenant", tenant);
    double offered = buffered + drops;
    std::printf("%-16s %-9s %7.2fms %7.2fms %8.3fms %9.0f %7.0f %5.1f%% %8.0f\n",
                tenant.c_str(), health.c_str(),
                boot != nullptr ? obs::HistogramQuantile(boot->bounds, boot->buckets, 0.50) : 0.0,
                boot != nullptr ? obs::HistogramQuantile(boot->bounds, boot->buckets, 0.99) : 0.0,
                verify != nullptr
                    ? obs::HistogramQuantile(verify->bounds, verify->buckets, 0.99)
                    : 0.0,
                buffered, drops, offered > 0 ? 100.0 * drops / offered : 0.0, restarts);
  }
  std::printf("\n");
}

void RenderPlatforms(const std::vector<Instrument>& instruments) {
  std::set<std::string> platforms;
  for (const Instrument& inst : instruments) {
    if (inst.name == "innet_scheduler_platform_headroom_bytes" ||
        inst.name == "innet_scheduler_platform_utilization") {
      const std::string* platform = inst.Label("platform");
      if (platform != nullptr) {
        platforms.insert(*platform);
      }
    }
  }
  if (platforms.empty()) {
    return;  // dump has no scheduler view (bare-platform run)
  }
  std::printf("PLATFORMS (%zu)\n", platforms.size());
  std::printf("%-16s %6s %14s\n", "platform", "util", "headroom_MiB");
  for (const std::string& platform : platforms) {
    double util = CounterValue(instruments, "innet_scheduler_platform_utilization", "platform",
                               platform);
    double headroom = CounterValue(instruments, "innet_scheduler_platform_headroom_bytes",
                                   "platform", platform);
    std::printf("%-16s %6.2f %14.1f\n", platform.c_str(), util, headroom / (1 << 20));
  }
  std::printf("\n");
}

// Fault-tolerant control plane: channel message accounting, retry economics,
// and the deploy journal's state. Dumps that predate the control channel have
// none of these instruments and degrade to a one-line "no data" note.
void RenderControlPlane(const std::vector<Instrument>& instruments) {
  bool any = false;
  for (const Instrument& inst : instruments) {
    if (inst.name.rfind("innet_control_", 0) == 0 || inst.name.rfind("innet_journal_", 0) == 0) {
      any = true;
      break;
    }
  }
  if (!any) {
    std::printf("CONTROL PLANE: no data (dump predates the control channel)\n\n");
    return;
  }
  std::printf("CONTROL PLANE\n");
  std::printf(
      "  channel: %.0f sent, %.0f delivered, %.0f dropped, %.0f duplicated, "
      "%.0f partition-dropped, %.0f deduped\n",
      CounterValue(instruments, "innet_control_messages_total", "event", "sent"),
      CounterValue(instruments, "innet_control_messages_total", "event", "delivered"),
      CounterValue(instruments, "innet_control_messages_total", "event", "dropped"),
      CounterValue(instruments, "innet_control_messages_total", "event", "duplicated"),
      CounterValue(instruments, "innet_control_messages_total", "event", "partition_dropped"),
      CounterValue(instruments, "innet_control_messages_total", "event", "deduped"));
  std::printf("  retries: %.0f retries, %.0f timeouts, %.0f give-ups\n",
              CounterValue(instruments, "innet_control_retries_total"),
              CounterValue(instruments, "innet_control_timeouts_total"),
              CounterValue(instruments, "innet_control_giveups_total"));
  if (const Instrument* partitioned =
          FindInstrument(instruments, "innet_control_partitioned_platforms")) {
    std::printf("  partitioned platforms: %.0f\n", partitioned->value);
  }
  // The journal: in-flight entries are deploys/migrations the controller has
  // promised but not yet confirmed — the crash-recovery working set.
  double inflight = CounterValue(instruments, "innet_journal_inflight");
  double replays = CounterValue(instruments, "innet_journal_replays_total");
  std::printf("  journal: %.0f in flight, %.0f replayed after crashes\n", inflight, replays);
  bool transitions = false;
  for (const Instrument& inst : instruments) {
    if (inst.name == "innet_journal_transitions_total") {
      if (!transitions) {
        std::printf("  journal transitions:");
        transitions = true;
      }
      const std::string* state = inst.Label("state");
      std::printf(" %s=%.0f", state != nullptr ? state->c_str() : "?", inst.value);
    }
  }
  if (transitions) {
    std::printf("\n");
  }
  std::printf("\n");
}

// Federated multi-PoP view: per-region fleet/degraded rows plus the
// coordinator's digest, deploy, migration, and reconcile accounting. Dumps
// that predate the federation layer have none of these instruments and
// degrade to a one-line "no data" note.
void RenderRegions(const std::vector<Instrument>& instruments) {
  std::set<std::string> regions;
  bool any = false;
  for (const Instrument& inst : instruments) {
    if (inst.name.rfind("innet_region_", 0) == 0 ||
        inst.name.rfind("innet_federation_", 0) == 0) {
      any = true;
      const std::string* region = inst.Label("region");
      if (region != nullptr) {
        regions.insert(*region);
      }
    }
  }
  if (!any) {
    std::printf("REGIONS: no data (dump predates the federation layer)\n\n");
    return;
  }
  std::printf("REGIONS (%zu)\n", regions.size());
  if (!regions.empty()) {
    std::printf("  %-16s %10s %8s %9s %14s\n", "region", "platforms", "tenants", "degraded",
                "queued_digests");
    for (const std::string& region : regions) {
      double degraded =
          CounterValue(instruments, "innet_region_degraded", "region", region);
      std::printf("  %-16s %10.0f %8.0f %9s %14.0f\n", region.c_str(),
                  CounterValue(instruments, "innet_region_platforms", "region", region),
                  CounterValue(instruments, "innet_region_tenants", "region", region),
                  degraded > 0 ? "yes" : "no",
                  CounterValue(instruments, "innet_region_queued_digests_total", "region",
                               region));
    }
  }
  std::printf("  digests: %.0f polled, %.0f received, %.0f lost, %.0f reordered\n",
              CounterValue(instruments, "innet_federation_digests_total", "event", "polled"),
              CounterValue(instruments, "innet_federation_digests_total", "event", "received"),
              CounterValue(instruments, "innet_federation_digests_total", "event", "lost"),
              CounterValue(instruments, "innet_federation_digests_total", "event", "reordered"));
  std::printf("  deploys: %.0f accepted, %.0f failed over, %.0f unplaceable\n",
              CounterValue(instruments, "innet_federation_deploys_total", "outcome", "accepted"),
              CounterValue(instruments, "innet_federation_deploys_total", "outcome",
                           "failed_over"),
              CounterValue(instruments, "innet_federation_deploys_total", "outcome",
                           "unplaceable"));
  std::printf("  migrations: %.0f completed, %.0f aborted, %.0f lost\n",
              CounterValue(instruments, "innet_federation_migrations_total", "outcome",
                           "completed"),
              CounterValue(instruments, "innet_federation_migrations_total", "outcome",
                           "aborted"),
              CounterValue(instruments, "innet_federation_migrations_total", "outcome", "lost"));
  std::printf("  reconciles: %.0f stale beliefs dropped, %.0f modules discovered\n",
              CounterValue(instruments, "innet_federation_reconcile_total", "outcome",
                           "stale_dropped"),
              CounterValue(instruments, "innet_federation_reconcile_total", "outcome",
                           "discovered"));
  std::printf("\n");
}

// Fleet observability dump (--fleet, the coordinator's FleetView written by
// bench/federation_failover or any coordinator embedder): per-region
// freshness/anomaly rows, the merged fleet series, and correlated incidents.
// A dump without the top-level "fleet" key (truncated, or predates the
// federated observability plane) degrades to a one-line "no data" note.
void RenderFleet(const obs::json::Value& root) {
  const obs::json::Value* fleet = root.Find("fleet");
  if (fleet == nullptr || !fleet->is_object()) {
    std::printf("FLEET: no data (dump has no fleet object)\n\n");
    return;
  }
  const obs::json::Value* regions = fleet->Find("regions");
  const obs::json::Value* ingests = fleet->Find("ingests");
  std::printf("FLEET (%zu regions, %lld digests ingested)\n",
              regions != nullptr && regions->is_array() ? regions->size() : 0,
              ingests != nullptr ? static_cast<long long>(ingests->int_number()) : 0);
  if (regions != nullptr && regions->is_array() && regions->size() > 0) {
    std::printf("  %-16s %9s %8s %6s %9s %10s\n", "region", "last_seq", "ingests", "stale",
                "degraded", "anomalous");
    for (size_t i = 0; i < regions->size(); ++i) {
      const obs::json::Value& region = regions->at(i);
      const auto* name = region.Find("region");
      const auto* last_seq = region.Find("last_seq");
      const auto* region_ingests = region.Find("ingests");
      const auto* stale = region.Find("stale");
      const auto* degraded = region.Find("degraded");
      const auto* anomalous = region.Find("anomalous");
      std::printf("  %-16s %9lld %8lld %6s %9s %10s\n",
                  name != nullptr ? name->string_value().c_str() : "?",
                  last_seq != nullptr ? static_cast<long long>(last_seq->int_number()) : 0,
                  region_ingests != nullptr
                      ? static_cast<long long>(region_ingests->int_number())
                      : 0,
                  stale != nullptr && stale->bool_value() ? "yes" : "no",
                  degraded != nullptr && degraded->bool_value() ? "yes" : "no",
                  anomalous != nullptr && anomalous->bool_value() ? "yes" : "no");
    }
  }
  const obs::json::Value* series = fleet->Find("series");
  if (series != nullptr && series->is_array() && series->size() > 0) {
    std::printf("  %-28s %12s %s\n", "series", "fleet_total", "flagged_regions");
    for (size_t i = 0; i < series->size(); ++i) {
      const obs::json::Value& entry = series->at(i);
      const auto* metric = entry.Find("metric");
      const auto* total = entry.Find("fleet_total");
      std::string flagged;
      const obs::json::Value* per_region = entry.Find("regions");
      if (per_region != nullptr && per_region->is_array()) {
        for (size_t r = 0; r < per_region->size(); ++r) {
          const auto* flag = per_region->at(r).Find("flagged");
          const auto* name = per_region->at(r).Find("region");
          if (flag != nullptr && flag->bool_value() && name != nullptr) {
            flagged += (flagged.empty() ? "" : " ") + name->string_value();
          }
        }
      }
      std::printf("  %-28s %12lld %s\n",
                  metric != nullptr ? metric->string_value().c_str() : "?",
                  total != nullptr ? static_cast<long long>(total->int_number()) : 0,
                  flagged.empty() ? "-" : flagged.c_str());
    }
  }
  const obs::json::Value* totals = fleet->Find("incident_totals");
  if (totals != nullptr && totals->is_object()) {
    const auto* fleet_scope = totals->Find("fleet");
    const auto* regional_scope = totals->Find("regional");
    std::printf("  incidents: %lld fleet-wide, %lld regional\n",
                fleet_scope != nullptr ? static_cast<long long>(fleet_scope->int_number()) : 0,
                regional_scope != nullptr
                    ? static_cast<long long>(regional_scope->int_number())
                    : 0);
  }
  const obs::json::Value* incidents = fleet->Find("incidents");
  if (incidents != nullptr && incidents->is_array()) {
    for (size_t i = 0; i < incidents->size(); ++i) {
      const obs::json::Value& incident = incidents->at(i);
      const auto* t_ns = incident.Find("t_ns");
      const auto* metric = incident.Find("metric");
      const auto* scope = incident.Find("scope");
      const auto* value = incident.Find("value");
      const auto* baseline = incident.Find("baseline");
      std::string names;
      const obs::json::Value* implicated = incident.Find("regions");
      if (implicated != nullptr && implicated->is_array()) {
        for (size_t r = 0; r < implicated->size(); ++r) {
          names += (names.empty() ? "" : " ") + implicated->at(r).string_value();
        }
      }
      std::printf("  t=%.3fs %-8s %-24s [%s] value %.4g vs baseline %.4g\n",
                  t_ns != nullptr ? static_cast<double>(t_ns->int_number()) / 1e9 : 0.0,
                  scope != nullptr ? scope->string_value().c_str() : "?",
                  metric != nullptr ? metric->string_value().c_str() : "?", names.c_str(),
                  value != nullptr ? value->number() : 0.0,
                  baseline != nullptr ? baseline->number() : 0.0);
    }
  }
  std::printf("\n");
}

void RenderTotals(const std::vector<Instrument>& instruments) {
  std::printf("TOTALS\n");
  std::printf("  vms: %.0f running, %.0f suspended, %.0f crashed\n",
              CounterValue(instruments, "innet_vm_running"),
              CounterValue(instruments, "innet_vm_suspended"),
              CounterValue(instruments, "innet_vm_crashed"));
  std::printf("  switch: %.0f delivered, %.0f missed, %.0f dropped\n",
              CounterValue(instruments, "innet_switch_delivered_total"),
              CounterValue(instruments, "innet_switch_missed_total"),
              CounterValue(instruments, "innet_switch_dropped_total"));
  for (const Instrument& inst : instruments) {
    if (inst.name != "innet_vm_boot_latency_ms") {
      continue;
    }
    const std::string* kind = inst.Label("kind");
    std::printf("  boot latency (%s): p50 %.2fms p99 %.2fms over %llu boots\n",
                kind != nullptr ? kind->c_str() : "all",
                obs::HistogramQuantile(inst.bounds, inst.buckets, 0.50),
                obs::HistogramQuantile(inst.bounds, inst.buckets, 0.99),
                static_cast<unsigned long long>(inst.count));
  }
  if (const Instrument* verify =
          FindInstrument(instruments, "innet_controller_verify_latency_ms")) {
    std::printf("  verify latency: p50 %.3fms p99 %.3fms over %llu requests\n",
                obs::HistogramQuantile(verify->bounds, verify->buckets, 0.50),
                obs::HistogramQuantile(verify->bounds, verify->buckets, 0.99),
                static_cast<unsigned long long>(verify->count));
  }
  if (const Instrument* dropped = FindInstrument(instruments, "innet_trace_dropped_total")) {
    std::printf("  trace: %.0f events dropped by the ring\n", dropped->value);
  }
  std::printf("\n");
}

void RenderTraceSummary(const obs::json::Value& trace_root) {
  const obs::json::Value* events = trace_root.Find("events");
  if (events == nullptr || !events->is_array()) {
    std::printf("TRACE: no data (dump has no events array)\n\n");
    return;
  }
  std::map<std::string, uint64_t> per_kind;
  uint64_t roots = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const auto* kind = events->at(i).Find("kind");
    if (kind != nullptr) {
      ++per_kind[kind->string_value()];
    }
    const auto* parent = events->at(i).Find("parent");
    if (parent != nullptr && parent->int_number() == 0) {
      ++roots;
    }
  }
  const obs::json::Value* dropped = trace_root.Find("dropped");
  std::printf("TRACE (%zu events, %lld dropped, %llu root spans)\n", events->size(),
              dropped != nullptr ? static_cast<long long>(dropped->int_number()) : 0,
              static_cast<unsigned long long>(roots));
  for (const auto& [kind, count] : per_kind) {
    std::printf("  %-24s %8llu\n", kind.c_str(), static_cast<unsigned long long>(count));
  }
  std::printf("\n");
}

void RenderPostmortems(const obs::json::Value& root) {
  const obs::json::Value* bundles = root.Find("postmortems");
  const obs::json::Value* recorded = root.Find("recorded");
  const obs::json::Value* depth = root.Find("depth");
  const obs::json::Value* evicted = root.Find("evicted");
  if (bundles == nullptr || !bundles->is_array()) {
    std::printf("POSTMORTEM: no data (dump has no postmortems array)\n\n");
    return;
  }
  std::printf("FLIGHT RECORDER (ring depth %lld, %lld events recorded, %zu postmortems",
              depth != nullptr ? static_cast<long long>(depth->int_number()) : 0,
              recorded != nullptr ? static_cast<long long>(recorded->int_number()) : 0,
              bundles->size());
  if (evicted != nullptr && evicted->int_number() > 0) {
    std::printf(", %lld evicted", static_cast<long long>(evicted->int_number()));
  }
  std::printf(")\n");
  if (bundles->size() == 0) {
    std::printf("  no postmortem bundles: nothing crashed, gave up, or aborted\n\n");
    return;
  }
  for (size_t i = 0; i < bundles->size(); ++i) {
    const obs::json::Value& bundle = bundles->at(i);
    const auto* trigger = bundle.Find("trigger");
    const auto* target = bundle.Find("target");
    const auto* tenant = bundle.Find("tenant");
    const auto* t_ns = bundle.Find("t_ns");
    const auto* detail = bundle.Find("detail");
    const auto* health = bundle.Find("health");
    std::printf("\n#%zu %s %s", i + 1,
                trigger != nullptr ? trigger->string_value().c_str() : "?",
                target != nullptr ? target->string_value().c_str() : "?");
    if (tenant != nullptr && !tenant->string_value().empty()) {
      std::printf(" tenant=%s", tenant->string_value().c_str());
    }
    if (t_ns != nullptr) {
      std::printf(" at t=%.6fs", static_cast<double>(t_ns->int_number()) / 1e9);
    }
    if (health != nullptr && !health->string_value().empty()) {
      std::printf(" health=%s", health->string_value().c_str());
    }
    if (detail != nullptr && !detail->string_value().empty()) {
      std::printf(" (%s)", detail->string_value().c_str());
    }
    std::printf("\n");
    const obs::json::Value* elements = bundle.Find("elements");
    if (elements != nullptr && elements->is_array() && elements->size() > 0) {
      std::printf("  %-24s %-18s %9s %10s %7s %12s\n", "element", "class", "packets", "bytes",
                  "drops", "proc_ns");
      for (size_t e = 0; e < elements->size(); ++e) {
        const obs::json::Value& element = elements->at(e);
        const auto* name = element.Find("element");
        const auto* cls = element.Find("class");
        const auto* packets = element.Find("packets");
        const auto* bytes = element.Find("bytes");
        const auto* drops = element.Find("drops");
        const auto* proc = element.Find("proc_ns");
        std::printf("  %-24s %-18s %9lld %10lld %7lld %12lld\n",
                    name != nullptr ? name->string_value().c_str() : "?",
                    cls != nullptr ? cls->string_value().c_str() : "?",
                    packets != nullptr ? static_cast<long long>(packets->int_number()) : 0,
                    bytes != nullptr ? static_cast<long long>(bytes->int_number()) : 0,
                    drops != nullptr ? static_cast<long long>(drops->int_number()) : 0,
                    proc != nullptr ? static_cast<long long>(proc->int_number()) : 0);
      }
    } else {
      std::printf("  elements: none captured (graph already torn down)\n");
    }
    const obs::json::Value* events = bundle.Find("events");
    if (events != nullptr && events->is_array() && events->size() > 0) {
      std::printf("  last %zu events:\n", events->size());
      for (size_t e = 0; e < events->size(); ++e) {
        const obs::json::Value& event = events->at(e);
        const auto* et = event.Find("t_ns");
        const auto* kind = event.Find("kind");
        const auto* etarget = event.Find("target");
        const auto* edetail = event.Find("detail");
        const auto* value = event.Find("value");
        std::printf("    t=%.6fs %-20s %-12s %-16s %lld\n",
                    et != nullptr ? static_cast<double>(et->int_number()) / 1e9 : 0.0,
                    kind != nullptr ? kind->string_value().c_str() : "?",
                    etarget != nullptr ? etarget->string_value().c_str() : "",
                    edetail != nullptr ? edetail->string_value().c_str() : "",
                    value != nullptr ? static_cast<long long>(value->int_number()) : 0);
      }
    } else {
      std::printf("  events: none captured\n");
    }
  }
  std::printf("\n");
}

// --- TRENDS (timeseries dump) -----------------------------------------------

// The value a sparkline plots for one point, by series kind.
double PointValue(const obs::json::Value& point, const std::string& kind) {
  const char* field = kind == "counter_rate" ? "rate_per_s"
                      : kind == "gauge"      ? "value"
                                             : "p99";
  const obs::json::Value* value = point.Find(field);
  return value != nullptr ? value->number() : 0.0;
}

// Renders up to the last `width` points as a fixed-alphabet ASCII sparkline,
// scaled to the series' own min..max (a flat series renders as all '-').
std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr size_t kLevelCount = sizeof(kLevels) - 2;  // index of highest level
  size_t start = values.size() > width ? values.size() - width : 0;
  double lo = values[start];
  double hi = values[start];
  for (size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (size_t i = start; i < values.size(); ++i) {
    size_t level =
        hi > lo ? static_cast<size_t>((values[i] - lo) / (hi - lo) * kLevelCount + 0.5)
                : kLevelCount / 2;
    out += kLevels[std::min(level, kLevelCount)];
  }
  return out;
}

struct TrendRow {
  std::string metric;
  std::string kind;
  std::vector<double> values;
  double last = 0;
  double peak = 0;
};

TrendRow MakeTrendRow(const obs::json::Value& series) {
  TrendRow row;
  if (const auto* name = series.Find("name")) {
    row.metric = name->string_value();
  }
  if (const auto* kind = series.Find("kind")) {
    row.kind = kind->string_value();
  }
  const obs::json::Value* points = series.Find("points");
  if (points != nullptr && points->is_array()) {
    for (size_t i = 0; i < points->size(); ++i) {
      double value = PointValue(points->at(i), row.kind);
      row.values.push_back(value);
      row.peak = std::max(row.peak, value);
      row.last = value;
    }
  }
  return row;
}

void PrintTrendRow(const TrendRow& row, size_t width) {
  if (row.values.empty()) {
    return;
  }
  const char* unit = row.kind == "counter_rate" ? "/s" : "";
  std::printf("  %-36s |%s| last %.4g%s peak %.4g%s\n", row.metric.c_str(),
              Sparkline(row.values, width).c_str(), row.last, unit, row.peak, unit);
}

void RenderTrends(const obs::json::Value& root) {
  const obs::json::Value* series_list = root.Find("series");
  if (series_list == nullptr || !series_list->is_array()) {
    std::printf("TRENDS: no data (dump has no series array)\n\n");
    return;
  }
  const obs::json::Value* window_ns = root.Find("window_ns");
  const obs::json::Value* windows = root.Find("windows_sampled");
  std::printf("TRENDS (window %.0f ms, %lld windows, %zu series)\n",
              window_ns != nullptr ? window_ns->number() / 1e6 : 0.0,
              windows != nullptr ? static_cast<long long>(windows->int_number()) : 0,
              series_list->size());

  constexpr size_t kSparkWidth = 40;
  // Tenant-labeled series grouped per tenant; a short watchlist of fleet
  // counters keeps the output a summary, not a dump of every instrument.
  std::map<std::string, std::vector<TrendRow>> per_tenant;
  std::vector<TrendRow> fleet;
  const std::set<std::string> fleet_watch = {
      "innet_platform_buffer_drops_total", "innet_switch_delivered_total",
      "innet_control_retries_total",       "innet_control_giveups_total",
      "innet_controller_verify_latency_ms", "innet_vm_running",
  };
  for (size_t i = 0; i < series_list->size(); ++i) {
    const obs::json::Value& series = series_list->at(i);
    const obs::json::Value* labels = series.Find("labels");
    const obs::json::Value* tenant =
        labels != nullptr ? labels->Find("tenant") : nullptr;
    TrendRow row = MakeTrendRow(series);
    if (row.values.empty()) {
      continue;
    }
    if (tenant != nullptr && tenant->is_string()) {
      per_tenant[tenant->string_value()].push_back(std::move(row));
    } else if (fleet_watch.count(row.metric) > 0) {
      fleet.push_back(std::move(row));
    }
  }

  for (const auto& [tenant, rows] : per_tenant) {
    std::printf(" tenant %s\n", tenant.c_str());
    for (const TrendRow& row : rows) {
      PrintTrendRow(row, kSparkWidth);
    }
  }
  if (per_tenant.empty()) {
    std::printf(" no tenant-labeled series (health monitor off for this run)\n");
  }
  if (!fleet.empty()) {
    std::printf(" fleet\n");
    for (const TrendRow& row : fleet) {
      PrintTrendRow(row, kSparkWidth);
    }
  }

  const obs::json::Value* anomalies = root.Find("anomalies");
  if (anomalies != nullptr && anomalies->is_array() && anomalies->size() > 0) {
    std::printf(" anomalies (%zu)\n", anomalies->size());
    for (size_t i = 0; i < anomalies->size(); ++i) {
      const obs::json::Value& flag = anomalies->at(i);
      const auto* t_ns = flag.Find("t_ns");
      const auto* signal = flag.Find("signal");
      const auto* target = flag.Find("target");
      const auto* value = flag.Find("value");
      const auto* baseline = flag.Find("baseline");
      std::printf("  t=%.3fs %-26s %-24s value %.4g vs baseline %.4g\n",
                  t_ns != nullptr ? static_cast<double>(t_ns->int_number()) / 1e9 : 0.0,
                  signal != nullptr ? signal->string_value().c_str() : "?",
                  target != nullptr ? target->string_value().c_str() : "?",
                  value != nullptr ? value->number() : 0.0,
                  baseline != nullptr ? baseline->number() : 0.0);
    }
  } else if (anomalies != nullptr) {
    std::printf(" anomalies: none flagged\n");
  }
  std::printf("\n");
}

// PATHS: per-tenant observed element chains from an innet_run --int-out dump,
// with attestation status against the verify-time path digest. Violations are
// the headline — a chain the symbolic engine never produced means the data
// plane diverged from what was verified at deploy time.
void RenderPaths(const obs::json::Value& root) {
  const obs::json::Value* tenants = root.Find("tenants");
  if (tenants == nullptr || !tenants->is_array()) {
    std::printf("PATHS: no data (dump has no tenants array — pre-INT dump?)\n\n");
    return;
  }
  const obs::json::Value* postcards = root.Find("postcards");
  const obs::json::Value* violations = root.Find("violations");
  std::printf("PATHS (%lld postcards, %lld violations, %zu tenants)\n",
              postcards != nullptr ? static_cast<long long>(postcards->int_number()) : 0,
              violations != nullptr ? static_cast<long long>(violations->int_number()) : 0,
              tenants->size());
  for (size_t i = 0; i < tenants->size(); ++i) {
    const obs::json::Value& tenant = tenants->at(i);
    const obs::json::Value* name = tenant.Find("tenant");
    const obs::json::Value* attested = tenant.Find("attested");
    const obs::json::Value* digest_paths = tenant.Find("digest_paths");
    const obs::json::Value* tenant_violations = tenant.Find("violations");
    bool is_attested = attested != nullptr && attested->bool_value();
    std::string name_text =
        name != nullptr && !name->string_value().empty() ? name->string_value() : "(unattributed)";
    if (is_attested) {
      std::printf(" tenant %-20s attested against %lld verified paths, %lld violations\n",
                  name_text.c_str(),
                  digest_paths != nullptr ? static_cast<long long>(digest_paths->int_number())
                                          : 0,
                  tenant_violations != nullptr
                      ? static_cast<long long>(tenant_violations->int_number())
                      : 0);
    } else {
      std::printf(" tenant %-20s unattested (no path digest registered)\n", name_text.c_str());
    }
    const obs::json::Value* paths = tenant.Find("paths");
    if (paths == nullptr || !paths->is_array()) {
      continue;
    }
    for (size_t j = 0; j < paths->size(); ++j) {
      const obs::json::Value& path = paths->at(j);
      const obs::json::Value* chain = path.Find("chain");
      const obs::json::Value* count = path.Find("count");
      const obs::json::Value* avg_ns = path.Find("avg_ns");
      const obs::json::Value* path_violations = path.Find("violations");
      const obs::json::Value* delivered = path.Find("delivered");
      long long bad =
          path_violations != nullptr ? static_cast<long long>(path_violations->int_number()) : 0;
      std::printf("  %-44s %6lld pkts  avg %8.0f ns  %s%s\n",
                  chain != nullptr && !chain->string_value().empty()
                      ? chain->string_value().c_str()
                      : "(empty chain)",
                  count != nullptr ? static_cast<long long>(count->int_number()) : 0,
                  avg_ns != nullptr ? avg_ns->number() : 0.0,
                  delivered != nullptr && delivered->bool_value() ? "delivered" : "dropped  ",
                  bad > 0 ? "  ** PATH VIOLATION **" : "");
    }
  }
  std::printf("\n");
}

int RenderFromFiles(const std::string& metrics_path, const std::string& trace_path,
                    const std::string& health_path, const std::string& postmortem_path,
                    const std::string& timeseries_path, const std::string& fleet_path,
                    const std::string& int_path) {
  std::string text;
  std::string error;

  // Each section degrades independently: a missing or truncated file renders
  // as a one-line "no data" note, never an error exit — partial telemetry
  // after a crash is exactly when this tool matters.
  std::vector<Instrument> instruments;
  bool have_metrics = false;
  std::string metrics_note;
  obs::json::Value root;
  if (!metrics_path.empty()) {
    if (!ReadFile(metrics_path, &text, &error)) {
      metrics_note = error;
    } else if (!obs::json::Value::Parse(text, &root, &error)) {
      metrics_note = metrics_path + ": " + error;
    } else {
      const obs::json::Value* metrics = FindMetricsArray(root);
      if (metrics == nullptr) {
        metrics_note = metrics_path + ": no metrics array (native dump or bench snapshot)";
      } else {
        instruments = ParseInstruments(*metrics);
        have_metrics = true;
      }
    }
  }

  obs::json::Value health_root;
  bool have_health = false;
  std::string health_note;
  if (!health_path.empty()) {
    if (!ReadFile(health_path, &text, &error)) {
      health_note = error;
    } else if (!obs::json::Value::Parse(text, &health_root, &error)) {
      health_note = health_path + ": " + error;
    } else {
      have_health = true;
    }
  }

  if (have_metrics) {
    std::printf("innet_top — %s (%zu instruments)\n\n", metrics_path.c_str(),
                instruments.size());
  } else {
    std::printf("innet_top\n\n");
  }
  if (!metrics_note.empty()) {
    std::printf("METRICS: no data (%s)\n\n", metrics_note.c_str());
  }
  if (!health_note.empty()) {
    std::printf("HEALTH: no data (%s)\n\n", health_note.c_str());
  }
  if (have_metrics) {
    RenderTenants(instruments, have_health ? &health_root : nullptr);
    RenderPlatforms(instruments);
    RenderControlPlane(instruments);
    RenderRegions(instruments);
    RenderTotals(instruments);
  }

  if (!trace_path.empty()) {
    obs::json::Value trace_root;
    if (!ReadFile(trace_path, &text, &error)) {
      std::printf("TRACE: no data (%s)\n\n", error.c_str());
    } else if (!obs::json::Value::Parse(text, &trace_root, &error)) {
      std::printf("TRACE: no data (%s: %s)\n\n", trace_path.c_str(), error.c_str());
    } else {
      RenderTraceSummary(trace_root);
    }
  }

  if (!postmortem_path.empty()) {
    obs::json::Value flight_root;
    if (!ReadFile(postmortem_path, &text, &error)) {
      std::printf("POSTMORTEM: no data (%s)\n\n", error.c_str());
    } else if (!obs::json::Value::Parse(text, &flight_root, &error)) {
      std::printf("POSTMORTEM: no data (%s: %s)\n\n", postmortem_path.c_str(), error.c_str());
    } else {
      RenderPostmortems(flight_root);
    }
  }

  if (!timeseries_path.empty()) {
    obs::json::Value ts_root;
    if (!ReadFile(timeseries_path, &text, &error)) {
      std::printf("TRENDS: no data (%s)\n\n", error.c_str());
    } else if (!obs::json::Value::Parse(text, &ts_root, &error)) {
      std::printf("TRENDS: no data (%s: %s)\n\n", timeseries_path.c_str(), error.c_str());
    } else {
      RenderTrends(ts_root);
    }
  }

  if (!fleet_path.empty()) {
    obs::json::Value fleet_root;
    if (!ReadFile(fleet_path, &text, &error)) {
      std::printf("FLEET: no data (%s)\n\n", error.c_str());
    } else if (!obs::json::Value::Parse(text, &fleet_root, &error)) {
      std::printf("FLEET: no data (%s: %s)\n\n", fleet_path.c_str(), error.c_str());
    } else {
      RenderFleet(fleet_root);
    }
  }

  if (!int_path.empty()) {
    obs::json::Value int_root;
    if (!ReadFile(int_path, &text, &error)) {
      std::printf("PATHS: no data (%s)\n\n", error.c_str());
    } else if (!obs::json::Value::Parse(text, &int_root, &error)) {
      std::printf("PATHS: no data (%s: %s)\n\n", int_path.c_str(), error.c_str());
    } else {
      RenderPaths(int_root);
    }
  }
  return 0;
}

int RunLive(const std::string& config_path, const std::string& placement_policy) {
  std::string config_text;
  std::string error;
  if (!ReadFile(config_path, &config_text, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  scheduler::PlacementPolicyKind policy = scheduler::PlacementPolicyKind::kFirstFit;
  if (!placement_policy.empty() && !scheduler::ParsePlacementPolicy(placement_policy, &policy)) {
    std::fprintf(stderr, "unknown placement policy '%s'\n", placement_policy.c_str());
    return 2;
  }

  sim::EventQueue clock;
  obs::Tracer().Enable();
  obs::Tracer().SetTimeSource([&clock] { return clock.now(); });
  obs::Health().Enable();

  controller::OrchestratorOptions options;
  options.policy = policy;
  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock, options);
  controller::ClientRequest request;
  request.client_id = "top";
  request.requester = controller::RequesterClass::kOperator;
  request.click_config = config_text;
  controller::OrchestratedDeploy deployed = orch.Deploy(request);
  if (!deployed.outcome.accepted) {
    std::fprintf(stderr, "deploy rejected: %s\n", deployed.outcome.reason.c_str());
    return 1;
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(2));
  platform::InNetPlatform* box = orch.platform(deployed.outcome.platform);
  for (int i = 0; i < 8; ++i) {
    Packet probe = Packet::MakeUdp(Ipv4Address::MustParse("10.0.0.1"),
                                   deployed.outcome.module_addr, 1234, 80, 32);
    box->HandlePacket(probe);
  }
  clock.RunUntil(clock.now() + sim::FromSeconds(1));
  box->ExportMetrics(&obs::Registry());
  orch.engine().ledger().ExportHeadroomGauges();
  obs::Health().EvaluateAll();
  obs::Tracer().ExportMetrics(&obs::Registry());

  std::vector<Instrument> instruments;
  {
    obs::json::Value dump = obs::Registry().ToJson();
    instruments = ParseInstruments(*dump.Find("metrics"));
  }
  std::printf("innet_top — live run of %s -> %s (%zu instruments)\n\n", config_path.c_str(),
              deployed.outcome.platform.c_str(), instruments.size());
  RenderTenants(instruments, nullptr);
  RenderPlatforms(instruments);
  RenderControlPlane(instruments);
  RenderRegions(instruments);
  RenderTotals(instruments);
  RenderTraceSummary(obs::Tracer().ToJson());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  std::string health_path;
  std::string postmortem_path;
  std::string timeseries_path;
  std::string fleet_path;
  std::string int_path;
  std::string run_config;
  std::string placement_policy;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--health" && i + 1 < argc) {
      health_path = argv[++i];
    } else if (arg == "--postmortem" && i + 1 < argc) {
      postmortem_path = argv[++i];
    } else if (arg == "--timeseries" && i + 1 < argc) {
      timeseries_path = argv[++i];
    } else if (arg == "--fleet" && i + 1 < argc) {
      fleet_path = argv[++i];
    } else if (arg == "--int" && i + 1 < argc) {
      int_path = argv[++i];
    } else if (arg == "--run" && i + 1 < argc) {
      run_config = argv[++i];
    } else if (arg == "--placement-policy" && i + 1 < argc) {
      placement_policy = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s --metrics FILE [--trace FILE] [--health FILE] "
                   "[--postmortem FILE] [--timeseries FILE] [--fleet FILE] [--int FILE]\n"
                   "       %s --postmortem FILE\n"
                   "       %s --timeseries FILE\n"
                   "       %s --fleet FILE\n"
                   "       %s --int FILE\n"
                   "       %s --run CONFIG [--placement-policy POLICY]\n",
                   argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
      return 2;
    }
  }
  if (!run_config.empty()) {
    return RunLive(run_config, placement_policy);
  }
  if (metrics_path.empty() && postmortem_path.empty() && timeseries_path.empty() &&
      fleet_path.empty() && int_path.empty()) {
    std::fprintf(stderr,
                 "one of --metrics, --postmortem, --timeseries, --fleet, --int, or --run is "
                 "required\n");
    return 2;
  }
  return RenderFromFiles(metrics_path, trace_path, health_path, postmortem_path,
                         timeseries_path, fleet_path, int_path);
}
