// Quickstart: deploy the paper's Figure 4 push-notification batcher through
// the In-Net controller, then push a packet through the deployed module's
// real Click graph.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/controller/controller.h"
#include "src/topology/network.h"

using namespace innet;

int main() {
  // 1. The operator brings up a controller over its network snapshot — the
  //    paper's Figure 3 topology: two routers, a NAT&firewall path, an HTTP
  //    optimizer + web cache path, and three processing platforms.
  controller::Controller ctrl(topology::Network::MakeFigure3());

  // The operator registers a policy that must always hold: inbound HTTP must
  // traverse the HTTP optimizer before reaching clients.
  ctrl.AddOperatorPolicy("reach from internet tcp src port 80 -> http_optimizer -> client");

  // 2. A mobile customer (10.10.0.5) submits the Figure 4 request: batch UDP
  //    push notifications arriving on port 1500 and forward them home.
  controller::ClientRequest request;
  request.client_id = "mobile1";
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0)"
      "-> batcher :: TimedUnqueue(120,100)"
      "-> dst :: ToNetfront();";
  request.requirements =
      "reach from internet udp "
      "-> batcher:dst:0 dst 10.10.0.5 "
      "-> client dst port 1500 "
      "const proto && dst port && payload";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};

  // 3. The controller symbolically executes the module and the network:
  //    security rules (anti-spoofing, default-off), the operator policy, and
  //    the client's reachability + invariant requirements, on every platform.
  controller::DeployOutcome outcome = ctrl.Deploy(request);
  if (!outcome.accepted) {
    std::printf("deployment rejected: %s\n", outcome.reason.c_str());
    return 1;
  }
  std::printf("deployed module %s on %s with address %s%s\n", outcome.module_id.c_str(),
              outcome.platform.c_str(), outcome.module_addr.ToString().c_str(),
              outcome.sandboxed ? " (sandboxed)" : "");
  std::printf("verification: %.1f ms model building + %.1f ms checking, %llu engine steps\n",
              outcome.model_build_ms, outcome.check_ms,
              static_cast<unsigned long long>(outcome.engine_steps));

  // 4. Run the deployed configuration for real: a notification arrives at
  //    the module address and is rewritten toward the client, held by the
  //    batcher until its timer fires.
  sim::EventQueue clock;
  std::string error;
  auto graph =
      click::Graph::FromText(ctrl.deployments()[0].config_text, &error, &clock);
  if (graph == nullptr) {
    std::printf("graph build failed: %s\n", error.c_str());
    return 1;
  }
  auto* egress = graph->FindAs<click::ToNetfront>("dst");
  egress->set_handler([&clock](Packet& p) {
    std::printf("t=%.0f s: delivered %s\n", sim::ToSeconds(clock.now()),
                p.Describe().c_str());
  });

  Packet note = Packet::MakeUdp(Ipv4Address::MustParse("5.5.5.5"), outcome.module_addr, 4000,
                                1500, 1024);
  note.SetPayload("you have mail");
  std::printf("t=0 s: notification sent to the module (%s)\n", note.Describe().c_str());
  graph->InjectAtSource(note);
  std::printf("        ... batcher holds it (queue=%zu) ...\n",
              graph->FindAs<click::TimedUnqueue>("batcher")->queued());
  clock.RunUntil(sim::FromSeconds(121));
  std::printf("done: %llu packet(s) delivered to the client\n",
              static_cast<unsigned long long>(egress->packet_count()));
  return 0;
}
