// The Figure 4 push-notification batcher (README quickstart): filter UDP
// notifications on port 1500, rewrite them toward the mobile client, and
// batch with a 120 s timer before forwarding.
FromNetfront()
  -> IPFilter(allow udp dst port 1500)
  -> IPRewriter(pattern - - 10.10.0.5 - 0 0)
  -> batcher :: TimedUnqueue(120,100)
  -> dst :: ToNetfront();
