// The §8 DoS-protection use case: a content provider under a Slowloris
// attack instantiates reverse-proxy processing modules at In-Net platforms
// and diverts traffic to them. This example walks the control-plane side:
// what the provider submits, what the controller verifies, and why the
// proxies are safe to run unsandboxed.
//
//   $ ./build/examples/ddos_defense
#include <cstdio>

#include "src/controller/controller.h"
#include "src/controller/stock_modules.h"
#include "src/topology/network.h"

using namespace innet;

int main() {
  controller::Controller ctrl(topology::Network::MakeFigure3());
  const Ipv4Address origin = Ipv4Address::MustParse("5.5.5.5");

  std::printf("Slowloris detected at the origin %s: deploying In-Net reverse proxies\n\n",
              origin.ToString().c_str());

  for (int i = 0; i < 3; ++i) {
    controller::ClientRequest request;
    request.client_id = "victim-proxy" + std::to_string(i);
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config = controller::StockReverseProxy(origin);
    // Explicit authorization: the provider registers its origin, so the
    // proxies' fetch traffic is allowed by default-off.
    request.whitelist = {origin};
    // The proxy must answer web clients: traffic from anywhere on TCP 80
    // must reach the proxy element and a response must reach the Internet.
    request.requirements = "reach from internet tcp dst port 80 -> module:proxy -> internet";

    controller::DeployOutcome outcome = ctrl.Deploy(request);
    if (!outcome.accepted) {
      std::printf("proxy %d rejected: %s\n", i, outcome.reason.c_str());
      continue;
    }
    std::printf("proxy %d: %s on %s  security=%s  (checked in %.1f ms)\n", i,
                outcome.module_addr.ToString().c_str(), outcome.platform.c_str(),
                outcome.sandboxed ? "sandboxed" : "statically safe",
                outcome.model_build_ms + outcome.check_ms);
    std::printf("         -> update DNS: www.victim.example A %s\n",
                outcome.module_addr.ToString().c_str());
  }

  std::printf("\nWhy the static check passes (Table 1's reverse-proxy row): every egress\n"
              "flow either answers the requester (implicit authorization) or fetches from\n"
              "the whitelisted origin — no sandbox needed, full forwarding performance.\n");

  std::printf("\nContrast: the same provider asking for a *transparent* proxy is refused:\n");
  controller::ClientRequest bad;
  bad.client_id = "victim-transparent";
  bad.requester = controller::RequesterClass::kThirdParty;
  bad.click_config = "FromNetfront() -> TransparentProxy() -> ToNetfront();";
  controller::DeployOutcome refused = ctrl.Deploy(bad);
  std::printf("  -> %s (%s)\n", refused.accepted ? "ACCEPTED?!" : "rejected",
              refused.reason.c_str());
  std::printf("  transparent proxies relay attacker-addressed transit traffic — exactly the\n"
              "  DDoS amplifier default-off exists to prevent (§2.1, §7).\n");

  std::printf("\nAttack over: the provider kills the proxies.\n");
  while (!ctrl.deployments().empty()) {
    std::string id = ctrl.deployments().front().module_id;
    ctrl.Kill(id);
    std::printf("  killed %s\n", id.c_str());
  }
  return 0;
}
