// The operator's perspective: expressing network policy in the reach
// language (§4.2), watching the controller enforce it against tenant
// requests, and seeing the security rules (§2.1) sort requests into
// safe / sandboxed / rejected.
//
//   $ ./build/examples/operator_policy
#include <cstdio>

#include "src/controller/controller.h"
#include "src/controller/stock_modules.h"
#include "src/topology/network.h"

using namespace innet;

namespace {

void Submit(controller::Controller* ctrl, const char* what,
            const controller::ClientRequest& request) {
  controller::DeployOutcome outcome = ctrl->Deploy(request);
  if (outcome.accepted) {
    std::printf("  %-34s ACCEPTED on %s%s\n", what, outcome.platform.c_str(),
                outcome.sandboxed ? " (sandboxed)" : "");
  } else {
    std::printf("  %-34s REJECTED: %s\n", what, outcome.reason.c_str());
  }
}

}  // namespace

int main() {
  controller::Controller ctrl(topology::Network::MakeFigure3());

  std::printf("Operator policy (checked on every network change, §4.3):\n");
  const char* policies[] = {
      // Inbound HTTP must be inspected by the HTTP optimizer.
      "reach from internet tcp src port 80 -> http_optimizer -> client",
      // Customers must keep plain UDP connectivity (Figure 1's guarantee).
      "reach from client udp -> internet",
  };
  for (const char* policy : policies) {
    std::string error;
    bool ok = ctrl.AddOperatorPolicy(policy, &error);
    std::printf("  %-66s %s\n", policy, ok ? "[registered]" : error.c_str());
  }

  std::printf("\nTenant requests arriving at the controller:\n");

  // 1. A legitimate personalized firewall from a residential customer.
  {
    controller::ClientRequest request;
    request.client_id = "alice";
    request.requester = controller::RequesterClass::kClient;
    request.click_config =
        "FromNetfront() -> IPFilter(allow udp dst port 4242) ->"
        "IPRewriter(pattern - - 10.10.0.7 - 0 0) -> ToNetfront();";
    request.requirements = "reach from internet udp -> client dst port 4242";
    request.whitelist = {Ipv4Address::MustParse("10.10.0.7")};
    request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
    Submit(&ctrl, "personalized firewall (client)", request);
  }

  // 2. A third party trying to deploy an IP router: transit relaying,
  //    refused by default-off.
  {
    controller::ClientRequest request;
    request.client_id = "mallory";
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config =
        "src :: FromNetfront(); rt :: LinearIPLookup(0.0.0.0/1 0, 128.0.0.0/1 1);"
        "a :: ToNetfront(); b :: ToNetfront(); src -> rt; rt[0] -> a; rt[1] -> b;";
    Submit(&ctrl, "IP router (third party)", request);
  }

  // 3. A source-spoofing module: anti-spoofing violation.
  {
    controller::ClientRequest request;
    request.client_id = "mallory2";
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config =
        "FromNetfront() -> SetIPSrc(6.6.6.6) -> SetIPDst(9.9.9.9) -> ToNetfront();";
    Submit(&ctrl, "source spoofer (third party)", request);
  }

  // 4. An x86 VM from a CDN: cannot be proven safe, so it runs sandboxed.
  {
    controller::ClientRequest request;
    request.client_id = "cdn";
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config = controller::StockX86Vm();
    Submit(&ctrl, "arbitrary x86 VM (third party)", request);
  }

  // 5. A geolocation DNS server: statically safe, deployable anywhere
  //    reachable from the Internet.
  {
    controller::ClientRequest request;
    request.client_id = "cdn-dns";
    request.requester = controller::RequesterClass::kThirdParty;
    request.click_config = controller::StockDnsServer();
    request.requirements = "reach from internet udp dst port 53 -> module:server -> internet";
    Submit(&ctrl, "geo DNS server (third party)", request);
  }

  std::printf("\n%zu modules running; every operator policy still holds on the new\n"
              "network state (the controller re-verified them for each placement).\n",
              ctrl.deployments().size());
  return 0;
}
