// The paper's unifying example (§4.5) end to end: a mobile customer deploys
// a push-notification batcher, the operator's controller verifies and places
// it, the platform runs it on a simulated clock, and the radio energy model
// quantifies the battery savings (Figure 13's use case).
//
//   $ ./build/examples/push_notifications
#include <cstdio>
#include <vector>

#include "src/click/elements.h"
#include "src/controller/controller.h"
#include "src/energy/radio_model.h"
#include "src/platform/platform.h"
#include "src/topology/network.h"

using namespace innet;

int main() {
  // --- Control plane: request -> verification -> placement ---------------------
  controller::Controller ctrl(topology::Network::MakeFigure3());
  controller::ClientRequest request;
  request.client_id = "phone";
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() ->"
      "IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0)"
      "-> TimedUnqueue(120,100)"
      "-> dst :: ToNetfront();";
  request.requirements = "reach from internet udp -> client dst port 1500 const payload";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};

  controller::DeployOutcome outcome = ctrl.Deploy(request);
  if (!outcome.accepted) {
    std::printf("rejected: %s\n", outcome.reason.c_str());
    return 1;
  }
  std::printf("controller placed the batcher on %s at %s (verified in %.1f ms)\n",
              outcome.platform.c_str(), outcome.module_addr.ToString().c_str(),
              outcome.model_build_ms + outcome.check_ms);

  // --- Data plane: the platform boots a ClickOS VM and batches traffic ----------
  sim::EventQueue clock;
  platform::InNetPlatform box(&clock);
  std::string error;
  if (box.Install(outcome.module_addr, ctrl.deployments()[0].config_text, &error) == 0) {
    std::printf("install failed: %s\n", error.c_str());
    return 1;
  }

  std::vector<double> wakeup_times;
  box.SetEgressHandler([&clock, &wakeup_times](Packet& p) {
    double now = sim::ToSeconds(clock.now());
    if (wakeup_times.empty() || now - wakeup_times.back() > 1.0) {
      wakeup_times.push_back(now);
      std::printf("  t=%6.0f s: batch delivered to the phone (%s)\n", now,
                  p.Describe().c_str());
    }
  });

  // An app server pushes one 1 KB notification every 30 s for 20 minutes.
  constexpr double kWindowSec = 1200;
  for (double t = 1; t < kWindowSec; t += 30) {
    clock.ScheduleAt(sim::FromSeconds(t), [&box, &outcome] {
      Packet note = Packet::MakeUdp(Ipv4Address::MustParse("5.5.5.5"), outcome.module_addr,
                                    4000, 1500, 1024);
      Packet p = note;
      box.HandlePacket(p);
    });
  }
  clock.RunUntil(sim::FromSeconds(kWindowSec));

  // --- Energy: batching vs direct delivery ---------------------------------------
  energy::RadioEnergyModel radio;
  std::vector<double> unbatched;
  for (double t = 1; t < kWindowSec; t += 30) {
    unbatched.push_back(t);
  }
  double direct_mw = radio.AveragePowerMw(unbatched, kWindowSec);
  double batched_mw = radio.AveragePowerMw(wakeup_times, kWindowSec);
  std::printf("\nradio wake-ups: %zu direct vs %zu batched\n", unbatched.size(),
              wakeup_times.size());
  std::printf("average device power: %.0f mW direct vs %.0f mW batched (%.0f%% saved)\n",
              direct_mw, batched_mw, (1 - batched_mw / direct_mw) * 100);
  std::printf("(the client trades up to 120 s of notification delay for battery — §4.5)\n");
  return 0;
}
