// The §8 "Protocol Tunneling" use case: an application wants to run SCTP
// across the Internet. Middleboxes force a tunnel — UDP performs far better,
// but some firewalls drop non-DNS UDP. Instead of burning SCTP's 3-second
// initial timeout probing, the client asks the In-Net controller a ~ms-scale
// reachability question and picks the right tunnel immediately.
//
//   $ ./build/examples/protocol_tunneling
#include <cstdio>

#include "src/controller/controller.h"
#include "src/topology/network.h"
#include "src/transport/tunnel_experiment.h"

using namespace innet;

namespace {

// Asks the operator whether plain UDP from this client reaches the Internet
// with the payload intact (the Figure 1 check).
bool UdpWorks(controller::Controller* ctrl) {
  std::string error;
  symexec::SymGraph graph = ctrl->BuildVerificationGraph(nullptr, &error);
  policy::ReachChecker checker(&graph, ctrl->MakeResolver(nullptr));
  auto spec =
      policy::ReachSpec::Parse("reach from client udp -> internet const payload", &error);
  if (!spec) {
    return false;
  }
  return checker.Check(*spec).satisfied;
}

}  // namespace

int main() {
  controller::Controller ctrl(topology::Network::MakeFigure3());

  std::printf("Asking the operator: does plain UDP reach the Internet unmodified?\n");
  bool udp_ok = UdpWorks(&ctrl);
  std::printf("  -> %s\n\n", udp_ok ? "yes (stateful firewall allows outbound UDP)"
                                    : "no (fall back to a TCP tunnel)");

  transport::TunnelMode mode =
      udp_ok ? transport::TunnelMode::kUdp : transport::TunnelMode::kTcp;
  std::printf("Tunneling SCTP over %s on a 100 Mb/s, 20 ms-RTT path:\n",
              udp_ok ? "UDP" : "TCP");
  std::printf("%-10s %-16s\n", "loss (%)", "goodput (Mb/s)");
  for (double loss : {0.0, 0.02, 0.05}) {
    transport::TunnelParams params;
    params.loss_rate = loss;
    params.duration_sec = 10;
    params.seed_repeats = 3;
    auto result = transport::RunSctpTunnelExperiment(mode, params);
    std::printf("%-10.0f %-16.2f\n", loss * 100, result.goodput_mbps);
  }

  std::printf("\nThe road not taken (what the wrong choice would have cost at 2%% loss):\n");
  transport::TunnelParams params;
  params.loss_rate = 0.02;
  params.duration_sec = 10;
  params.seed_repeats = 3;
  auto udp_result = transport::RunSctpTunnelExperiment(transport::TunnelMode::kUdp, params);
  auto tcp_result = transport::RunSctpTunnelExperiment(transport::TunnelMode::kTcp, params);
  std::printf("  SCTP over UDP: %.1f Mb/s   over TCP: %.1f Mb/s  (%.1fx)\n",
              udp_result.goodput_mbps, tcp_result.goodput_mbps,
              udp_result.goodput_mbps / tcp_result.goodput_mbps);
  std::printf("\n(§8: the In-Net reachability query takes ~200 ms end to end, versus the\n"
              " 3 s SCTP spec timeout a blind UDP probe would risk — and it also proves\n"
              " the payload survives, which probing cannot.)\n");
  return 0;
}
